#include "obs/meta.hpp"

#include <chrono>

namespace commroute::obs {

namespace {

std::string& argv_storage() {
  static std::string argv_line;
  return argv_line;
}

}  // namespace

void set_process_argv(int argc, const char* const* argv) {
  if (!argv_storage().empty() || argc <= 0) {
    return;
  }
  std::string joined;
  for (int i = 0; i < argc; ++i) {
    if (i > 0) {
      joined += ' ';
    }
    joined += argv[i];
  }
  argv_storage() = std::move(joined);
}

const std::string& process_argv() { return argv_storage(); }

std::string git_describe() {
#ifdef COMMROUTE_GIT_DESCRIBE
  return COMMROUTE_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

std::uint64_t unix_time_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

JsonWriter& add_metadata_fields(JsonWriter& w) {
  w.field("schema_version", kArtifactSchemaVersion)
      .field("created_unix_ms", unix_time_ms())
      .field("git", git_describe())
      .field("argv", process_argv());
  return w;
}

Event metadata_event() {
  Event ev("meta");
  ev.field("schema_version", kArtifactSchemaVersion)
      .field("created_unix_ms", unix_time_ms())
      .field("git", git_describe())
      .field("argv", process_argv());
  return ev;
}

}  // namespace commroute::obs
