// Minimal JSON support for the observability layer: an ordered-field
// object writer (used by metric snapshots, JSONL events, and the bench
// output) and a small validating parser (used by tests and tools that
// round-trip the emitted records). Deliberately not a general JSON
// library: one object per writer, no incremental arrays, no comments.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace commroute::obs {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
std::string json_escape(std::string_view s);

/// Formats a finite double with the shortest precision that round-trips;
/// non-finite values render as null (JSON has no NaN/Inf).
std::string json_number(double value);

/// Builds one JSON object with fields in insertion order. str() renders
/// the complete object; a writer is copyable so events can be stored.
class JsonWriter {
 public:
  JsonWriter& field(std::string_view key, std::string_view value);
  JsonWriter& field(std::string_view key, const std::string& value);
  JsonWriter& field(std::string_view key, const char* value);
  JsonWriter& field(std::string_view key, std::uint64_t value);
  JsonWriter& field(std::string_view key, std::int64_t value);
  JsonWriter& field(std::string_view key, int value);
  JsonWriter& field(std::string_view key, double value);
  JsonWriter& field(std::string_view key, bool value);
  /// Inserts `json` verbatim as the value (for nested objects/arrays).
  JsonWriter& raw_field(std::string_view key, std::string_view json);

  std::string str() const;

 private:
  void begin_field(std::string_view key);
  std::string body_;
};

/// Parsed JSON value. Objects preserve field order; lookup is linear
/// (records in this codebase have a handful of fields).
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;
  using Storage =
      std::variant<std::nullptr_t, bool, double, std::string, Array, Object>;

  Storage value;

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value); }
  bool is_bool() const { return std::holds_alternative<bool>(value); }
  bool is_number() const { return std::holds_alternative<double>(value); }
  bool is_string() const { return std::holds_alternative<std::string>(value); }
  bool is_array() const { return std::holds_alternative<Array>(value); }
  bool is_object() const { return std::holds_alternative<Object>(value); }

  bool as_bool() const { return std::get<bool>(value); }
  double as_number() const { return std::get<double>(value); }
  const std::string& as_string() const { return std::get<std::string>(value); }
  const Array& as_array() const { return std::get<Array>(value); }
  const Object& as_object() const { return std::get<Object>(value); }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
};

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected). nullopt on any syntax error. Hardened
/// for untrusted input: nesting beyond 256 levels, non-standard numbers
/// (leading '+', bare '.', overflow to infinity), and raw control
/// characters inside strings are all rejected rather than crashing or
/// silently accepted. Bytes >= 0x80 pass through verbatim (the parser
/// does not validate UTF-8), and duplicate keys are kept in order.
std::optional<JsonValue> json_parse(std::string_view text);

/// Renders a parsed value back to compact JSON text (objects keep field
/// order). Round-trips json_parse output up to number formatting.
std::string json_render(const JsonValue& value);

}  // namespace commroute::obs
