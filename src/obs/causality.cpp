#include "obs/causality.hpp"

#include <algorithm>
#include <deque>

#include "engine/state.hpp"
#include "scenario/fault.hpp"
#include "support/error.hpp"
#include "trace/recording_io.hpp"

namespace commroute::obs {

std::uint64_t CausalityGraph::critical_path_len() const {
  const CausalIndex t = terminal();
  return t == kNoCausalIndex ? 0 : activations_[t].depth;
}

std::uint64_t CausalityGraph::critical_path_us() const {
  const CausalIndex t = terminal();
  return (t == kNoCausalIndex || !timed_) ? 0 : activations_[t].t_us;
}

CausalIndex CausalityGraph::terminal() const {
  // The last assignment-changing activation; within its step the one
  // with the deepest chain (first such index on ties, deterministic).
  CausalIndex best = kNoCausalIndex;
  for (CausalIndex i = 0; i < activations_.size(); ++i) {
    const CausalActivation& a = activations_[i];
    if (!a.changed) {
      continue;
    }
    if (best == kNoCausalIndex || a.step > activations_[best].step ||
        (a.step == activations_[best].step &&
         a.depth > activations_[best].depth)) {
      best = i;
    }
  }
  return best;
}

CausalLink CausalityGraph::link_for(CausalIndex a, ChannelIdx via) const {
  const CausalActivation& act = activations_[a];
  CausalLink link;
  link.activation = a;
  link.step = act.step;
  link.node = act.node;
  link.t_us = act.t_us;
  link.changed = act.changed;
  link.via = via;
  return link;
}

std::vector<CausalLink> CausalityGraph::critical_path() const {
  std::vector<CausalLink> rev;
  CausalIndex cur = terminal();
  while (cur != kNoCausalIndex) {
    rev.push_back(link_for(cur, kNoChannel));
    // Deepest parent; the program-order edge wins ties (considered
    // first, strict improvement required), keeping extraction
    // deterministic. depth(parent) == depth(cur) - 1 by the DP, so the
    // chain length equals the terminal depth.
    const CausalActivation& a = activations_[cur];
    CausalIndex parent = a.prog_parent;
    std::uint64_t parent_depth =
        parent == kNoCausalIndex ? 0 : activations_[parent].depth;
    ChannelIdx via = kNoChannel;
    for (const CausalIndex m : a.consumed) {
      const CausalIndex s = messages_[m].sender;
      if (s != kNoCausalIndex && activations_[s].depth > parent_depth) {
        parent = s;
        parent_depth = activations_[s].depth;
        via = messages_[m].channel;
      }
    }
    rev.back().via = via;
    cur = parent;
  }
  std::reverse(rev.begin(), rev.end());
  return rev;
}

std::vector<std::uint64_t> CausalityGraph::influence() const {
  // Ancestor-node bitsets, one pass in topological (= insertion) order:
  // anc(a) = {a.node} | anc(prog_parent) | anc(sender of each consumed).
  const std::size_t n = node_count();
  const std::size_t words = (n + 63) / 64;
  std::vector<std::uint64_t> anc(activations_.size() * words, 0);
  std::vector<std::uint64_t> counts(n, 0);
  for (CausalIndex i = 0; i < activations_.size(); ++i) {
    const CausalActivation& a = activations_[i];
    std::uint64_t* w = anc.data() + static_cast<std::size_t>(i) * words;
    const auto merge = [&](CausalIndex parent) {
      const std::uint64_t* p =
          anc.data() + static_cast<std::size_t>(parent) * words;
      for (std::size_t k = 0; k < words; ++k) {
        w[k] |= p[k];
      }
    };
    if (a.prog_parent != kNoCausalIndex) {
      merge(a.prog_parent);
    }
    for (const CausalIndex m : a.consumed) {
      if (messages_[m].sender != kNoCausalIndex) {
        merge(messages_[m].sender);
      }
    }
    w[a.node / 64] |= std::uint64_t{1} << (a.node % 64);
    for (std::size_t v = 0; v < n; ++v) {
      if ((w[v / 64] >> (v % 64)) & 1) {
        ++counts[v];
      }
    }
  }
  return counts;
}

CausalityGraph::RootCause CausalityGraph::root_cause(NodeId v) const {
  CR_REQUIRE(v < node_count(), "root_cause: node out of range");
  RootCause rc;
  rc.node = v;
  CausalIndex cur = kNoCausalIndex;
  for (CausalIndex i = 0; i < activations_.size(); ++i) {
    if (activations_[i].node == v && activations_[i].changed) {
      cur = i;  // last change wins (insertion order = step order)
    }
  }
  if (cur == kNoCausalIndex) {
    return rc;  // pi(v) never changed inside the window
  }
  std::vector<CausalLink> rev;
  for (;;) {
    // Strictly decreasing steps (a message is sent before it is
    // consumed, and adopted no earlier than consumed), so this
    // terminates.
    const CausalActivation& a = activations_[cur];
    rev.push_back(link_for(cur, kNoChannel));
    if (a.adoption_unknown) {
      rc.complete = false;
      break;
    }
    if (a.adopted == kNoCausalIndex) {
      break;  // genuine origin: epsilon selection or the destination
    }
    const CausalMessage& m = messages_[a.adopted];
    rev.back().via = m.channel;
    if (m.sender == kNoCausalIndex) {
      rc.complete = false;  // provenance left the recorded window
      break;
    }
    cur = m.sender;
  }
  std::reverse(rev.begin(), rev.end());
  rc.chain = std::move(rev);
  return rc;
}

CausalityStats CausalityGraph::stats() const {
  CausalityStats s;
  s.activations = activations_.size();
  s.messages = messages_.size();
  for (const CausalActivation& a : activations_) {
    s.consume_edges += a.consumed.size();
    if (a.prog_parent != kNoCausalIndex) {
      ++s.program_edges;
    }
    if (a.adopted != kNoCausalIndex) {
      ++s.adoption_edges;
    }
    if (a.depth == 1) {
      ++s.roots;
    }
    s.max_depth = std::max(s.max_depth, a.depth);
  }
  for (const CausalMessage& m : messages_) {
    if (m.sender != kNoCausalIndex) {
      ++s.emit_edges;
    }
    if (m.dropped) {
      ++s.dropped_messages;
    }
    if (m.flushed) {
      ++s.flushed_messages;
    } else if (m.consumer == kNoCausalIndex) {
      ++s.in_flight_messages;
    }
  }
  s.faults = faults_.size();
  s.unknown_origin_messages = unknown_origin_;
  s.critical_path_len = critical_path_len();
  s.critical_path_us = critical_path_us();
  s.truncated = truncated_;
  s.timed = timed_;
  return s;
}

CausalityRecorder::CausalityRecorder(const spp::Instance& instance,
                                     std::uint64_t first_step)
    : instance_(&instance), next_step_(first_step) {
  CR_REQUIRE(first_step >= 1, "causality: first_step must be >= 1");
  const Graph& g = instance.graph();
  graph_.first_step_ = first_step;
  graph_.truncated_ = first_step > 1;
  graph_.node_names_.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    graph_.node_names_.push_back(g.name(v));
  }
  graph_.channel_names_.reserve(g.channel_count());
  for (ChannelIdx c = 0; c < g.channel_count(); ++c) {
    graph_.channel_names_.push_back(g.channel_name(c));
  }
  channel_mirror_.resize(g.channel_count());
  rho_provenance_.assign(g.channel_count(), kNoCausalIndex);
  last_activation_.assign(g.node_count(), kNoCausalIndex);
  step_activation_.assign(g.node_count(), kNoCausalIndex);
}

void CausalityRecorder::set_adoption_unavailable() {
  adoption_available_ = false;
}

void CausalityRecorder::record(const model::ActivationStep& step,
                               const engine::StepEffect& effect,
                               std::uint64_t step_index,
                               std::optional<std::uint64_t> t_us) {
  CR_REQUIRE(step_index == next_step_,
             "causality: steps must be recorded contiguously (expected " +
                 std::to_string(next_step_) + ", got " +
                 std::to_string(step_index) + ")");
  ++next_step_;
  if (graph_.activations_.empty()) {
    graph_.timed_ = t_us.has_value();
  }
  const Graph& g = instance_->graph();

  // One vertex per updating node. U is sorted and duplicate-free
  // (model::validate_step), and announcements happen after reads, so
  // every causal parent of these vertices already has a final depth.
  for (const NodeId v : step.nodes) {
    CausalActivation a;
    a.step = step_index;
    a.node = v;
    a.t_us = t_us.value_or(0);
    a.prog_parent = last_activation_[v];
    step_activation_[v] =
        static_cast<CausalIndex>(graph_.activations_.size());
    graph_.activations_.push_back(std::move(a));
  }

  // Reads: consume edges, drop marks (from g, 1-based indices into the
  // processed prefix), and rho provenance. effect.reads is parallel to
  // step.reads (execute_step preserves X's order).
  CR_ASSERT(effect.reads.size() == step.reads.size(),
            "causality: effect/step read mismatch");
  for (std::size_t i = 0; i < effect.reads.size(); ++i) {
    const engine::ReadEffect& read = effect.reads[i];
    const model::ReadSpec& spec = step.reads[i];
    CR_ASSERT(read.channel == spec.channel,
              "causality: effect/step read channel mismatch");
    const NodeId receiver = g.channel_id(read.channel).to;
    const CausalIndex consumer = step_activation_[receiver];
    CR_ASSERT(consumer != kNoCausalIndex,
              "causality: read receiver not in U");
    std::deque<CausalIndex>& mirror = channel_mirror_[read.channel];
    std::size_t drop_cursor = 0;
    for (std::uint32_t j = 1; j <= read.processed; ++j) {
      CausalIndex m;
      if (!mirror.empty()) {
        m = mirror.front();
        mirror.pop_front();
      } else {
        // Already in flight when a truncated window began: an
        // unknown-origin vertex (its chain contribution is 0).
        CausalMessage msg;
        msg.channel = read.channel;
        m = static_cast<CausalIndex>(graph_.messages_.size());
        graph_.messages_.push_back(msg);
        ++graph_.unknown_origin_;
      }
      CausalMessage& msg = graph_.messages_[m];
      msg.consumer = consumer;
      msg.consume_step = step_index;
      while (drop_cursor < spec.drops.size() &&
             spec.drops[drop_cursor] < j) {
        ++drop_cursor;
      }
      msg.dropped = drop_cursor < spec.drops.size() &&
                    spec.drops[drop_cursor] == j;
      if (!msg.dropped) {
        rho_provenance_[read.channel] = m;
      }
      graph_.activations_[consumer].consumed.push_back(m);
    }
  }

  // Selects: changed flags and adoption (data-flow) edges.
  CR_ASSERT(effect.nodes.size() == step.nodes.size(),
            "causality: effect/step node mismatch");
  for (const engine::NodeEffect& node : effect.nodes) {
    CausalActivation& a =
        graph_.activations_[step_activation_[node.node]];
    a.changed = node.changed;
    if (!adoption_available_) {
      a.adoption_unknown = node.changed;
    } else if (node.selected_from != kNoChannel) {
      a.adopted = rho_provenance_[node.selected_from];
      // rho predates a truncated window: provenance unknowable.
      a.adoption_unknown = a.adopted == kNoCausalIndex;
    }
  }

  // Depth DP: 1 + the deepest parent (program order or the sender of a
  // consumed message; unknown-origin messages contribute 0).
  for (const NodeId v : step.nodes) {
    CausalActivation& a = graph_.activations_[step_activation_[v]];
    std::uint64_t best = 0;
    if (a.prog_parent != kNoCausalIndex) {
      best = graph_.activations_[a.prog_parent].depth;
    }
    for (const CausalIndex m : a.consumed) {
      const CausalIndex s = graph_.messages_[m].sender;
      if (s != kNoCausalIndex) {
        best = std::max(best, graph_.activations_[s].depth);
      }
    }
    a.depth = best + 1;
  }

  // Announces: emit edges, mirrored onto the channel queues so later
  // reads pop the right vertices (channels are FIFO).
  for (const engine::SentMessage& sent : effect.sent) {
    const NodeId from = g.channel_id(sent.channel).from;
    const CausalIndex sender = step_activation_[from];
    CR_ASSERT(sender != kNoCausalIndex, "causality: sender not in U");
    CausalMessage msg;
    msg.channel = sent.channel;
    msg.sender = sender;
    msg.send_step = step_index;
    channel_mirror_[sent.channel].push_back(
        static_cast<CausalIndex>(graph_.messages_.size()));
    graph_.messages_.push_back(msg);
  }

  for (const NodeId v : step.nodes) {
    last_activation_[v] = step_activation_[v];
    step_activation_[v] = kNoCausalIndex;
  }
}

void CausalityRecorder::record_fault(std::string text, std::uint64_t t_us) {
  CausalFault f;
  f.before = next_step_;
  f.text = std::move(text);
  f.t_us = t_us;
  graph_.faults_.push_back(std::move(f));
}

void CausalityRecorder::flush_channel(ChannelIdx c) {
  CR_REQUIRE(c < channel_mirror_.size(),
             "causality: flushed channel out of range");
  for (const CausalIndex m : channel_mirror_[c]) {
    graph_.messages_[m].flushed = true;
  }
  channel_mirror_[c].clear();
  // Whatever the reader had learned from c is gone with the session;
  // adoption provenance for a post-fault rho re-learn starts fresh.
  rho_provenance_[c] = kNoCausalIndex;
}

CausalityGraph CausalityRecorder::finish() && { return std::move(graph_); }

CausalityGraph build_causality(const spp::Instance& instance,
                               const trace::RecordingDoc& doc) {
  CR_REQUIRE(doc.steps.size() == doc.assignments.size(),
             "causality: recording steps/assignments mismatch");
  const auto step_time =
      [&](std::size_t t) -> std::optional<std::uint64_t> {
    return doc.step_time_us.empty()
               ? std::nullopt
               : std::optional<std::uint64_t>(doc.step_time_us[t]);
  };

  if (doc.complete()) {
    // Replayable window: re-execute for exact effects (works for any
    // loadable recording, I/O fields or not — replay is deterministic).
    // Recorded faults (schema v3) are re-applied at their recorded
    // positions so the mirrors stay in lockstep with the faulted run.
    engine::NetworkState state(instance);
    CausalityRecorder recorder(instance);
    std::size_t next_fault = 0;
    const auto apply_faults_before = [&](std::uint64_t step_index) {
      while (next_fault < doc.faults.size() &&
             doc.faults[next_fault].before <= step_index) {
        const trace::RecordedFault& f = doc.faults[next_fault++];
        const scenario::FaultEvent ev =
            scenario::parse_fault(f.text, instance);
        recorder.record_fault(f.text, f.t_us);
        for (const ChannelIdx c : scenario::apply_fault(state, ev).flushed) {
          recorder.flush_channel(c);
        }
      }
    };
    for (std::size_t t = 0; t < doc.steps.size(); ++t) {
      apply_faults_before(t + 1);
      const engine::StepEffect effect =
          engine::execute_step(state, doc.steps[t]);
      recorder.record(doc.steps[t], effect, t + 1, step_time(t));
    }
    apply_faults_before(doc.steps.size() + 1);
    return std::move(recorder).finish();
  }

  // Ring window: seed from the recorded per-step I/O. The channel state
  // at the window edge is unknown, so reads that outrun the mirrored
  // sends synthesize unknown-origin messages and the graph reports
  // itself truncated.
  CR_REQUIRE(!doc.io.empty(),
             "cannot build a causal DAG from a ring window without "
             "per-step I/O fields (recording starts at step " +
                 std::to_string(doc.meta.first_step) +
                 " and carries no \"sent\"/\"reads\" records)");
  CausalityRecorder recorder(instance, doc.meta.first_step);
  bool has_selected = true;
  for (std::size_t t = 0; t < doc.steps.size(); ++t) {
    if (doc.io[t].selected.size() != doc.steps[t].nodes.size()) {
      has_selected = false;  // schema-v1 window: no selection provenance
      break;
    }
  }
  if (!has_selected) {
    recorder.set_adoption_unavailable();
  }
  // Faults inside the window: no state to mutate here, but the flushed
  // channel set is purely topological, so the mirror still tracks them.
  std::size_t next_fault = 0;
  const auto apply_faults_before = [&](std::uint64_t step_index) {
    while (next_fault < doc.faults.size() &&
           doc.faults[next_fault].before <= step_index) {
      const trace::RecordedFault& f = doc.faults[next_fault++];
      recorder.record_fault(f.text, f.t_us);
      for (const ChannelIdx c : scenario::fault_flushed_channels(
               instance, scenario::parse_fault(f.text, instance))) {
        recorder.flush_channel(c);
      }
    }
  };
  for (std::size_t t = 0; t < doc.steps.size(); ++t) {
    apply_faults_before(doc.meta.first_step + t);
    const trace::StepIo& io = doc.io[t];
    CR_REQUIRE(io.reads.size() == doc.steps[t].reads.size(),
               "causality: recorded I/O does not match the step's reads");
    engine::StepEffect effect;
    effect.reads.reserve(io.reads.size());
    for (const trace::StepIo::Read& read : io.reads) {
      engine::ReadEffect re;
      re.channel = read.channel;
      re.processed = read.processed;
      re.dropped = read.dropped;
      effect.reads.push_back(std::move(re));
    }
    const trace::Assignment& prev =
        t == 0 ? doc.initial : doc.assignments[t - 1];
    effect.nodes.reserve(doc.steps[t].nodes.size());
    for (std::size_t k = 0; k < doc.steps[t].nodes.size(); ++k) {
      engine::NodeEffect ne;
      ne.node = doc.steps[t].nodes[k];
      ne.changed = prev[ne.node] != doc.assignments[t][ne.node];
      ne.selected_from = has_selected ? io.selected[k] : kNoChannel;
      effect.nodes.push_back(std::move(ne));
    }
    effect.sent.reserve(io.sent.size());
    for (const ChannelIdx c : io.sent) {
      effect.sent.push_back(engine::SentMessage{c, engine::Message{}});
    }
    recorder.record(doc.steps[t], effect, doc.meta.first_step + t,
                    step_time(t));
  }
  apply_faults_before(doc.meta.first_step + doc.steps.size());
  return std::move(recorder).finish();
}

}  // namespace commroute::obs
