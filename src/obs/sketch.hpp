// Streaming sketches: bounded-memory, mergeable summaries for
// internet-scale observability. Three structures, all deterministic and
// all with *commutative, associative* merge_from, so per-worker shards
// combine into byte-identical JSON at any thread width (the same
// shard-and-merge contract Registry::merge_from established):
//
//   * LogHistogram — an HDR-style log-bucketed histogram with
//     configurable precision and an exact quantile-error contract:
//     quantile(q) returns an upper bound u on the true empirical
//     quantile v with (u - v) / v < 2^-precision_bits. Memory is
//     O(buckets touched), never O(samples).
//   * TopK — a space-saving heavy-hitter sketch (most-flapped nodes,
//     hottest channels, deepest-queue channels). Counts are exact
//     upper bounds with a per-entry overestimation `error`; merges are
//     exact (and order-invariant) whenever capacity covers the distinct
//     keys, approximate with documented eviction ties otherwise.
//   * ReservoirSample — a seeded bottom-k sample by hashed priority.
//     Whether an item is kept depends only on (seed, id), never on
//     arrival order or shard assignment, so the union-merge of any
//     partition of a stream equals the sample of the whole stream.
//
// The ObsBudget knob selects between the exact per-node / per-step
// observability structures (kFull) and these sketches (kSketched) in
// engine::run, checker::explore, sim::run, and study::run_campaign —
// forensics degrade gracefully instead of OOMing at 100k+ nodes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace commroute::obs {

/// How much memory observability may spend on a run (see file comment).
enum class ObsBudget {
  kFull,      ///< exact maps/vectors; memory grows with nodes x steps
  kSketched,  ///< bounded sketches; memory independent of instance size
};

std::string to_string(ObsBudget budget);

/// Log-bucketed histogram over uint64 values. Values below
/// 2^precision_bits are counted exactly; above, buckets group values
/// sharing the top precision_bits+1 significant bits, so each bucket's
/// relative width is below 2^-precision_bits. Sparse storage: only
/// touched buckets cost memory (at most 2^precision_bits x 65 total).
class LogHistogram {
 public:
  /// `precision_bits` in [1, 16]; default 5 gives a < 3.125% relative
  /// quantile error at ~70 buckets per power-of-two decade group.
  explicit LogHistogram(unsigned precision_bits = 5);

  void observe(std::uint64_t v);

  /// Adds another histogram's observations. Requires identical
  /// precision. Commutative and associative: any merge tree over the
  /// same multiset of observations yields identical state.
  void merge_from(const LogHistogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  unsigned precision_bits() const { return bits_; }
  std::size_t bucket_count() const { return buckets_.size(); }

  /// Upper bound on the empirical q-quantile (q in [0, 1]), clamped to
  /// the exact observed maximum. Error contract: for the true quantile
  /// value v, quantile(q) >= v and (quantile(q) - v) / v <
  /// 2^-precision_bits. 0 when empty.
  std::uint64_t quantile(double q) const;

  /// Documented bound on the relative quantile error: 2^-precision_bits.
  double relative_error_bound() const {
    return 1.0 / static_cast<double>(1u << bits_);
  }

  /// Deterministic byte estimate (bucket count x entry size; never
  /// capacity, never the allocator) — safe in byte-compared outputs.
  std::uint64_t estimated_bytes() const;

  /// {"precision_bits":..,"count":..,"sum":..,"min":..,"max":..,
  ///  "p50":..,"p90":..,"p99":..,"buckets":..} — a pure function of the
  /// observed multiset, hence byte-identical across shard counts.
  std::string to_json() const;

 private:
  std::uint32_t bucket_index(std::uint64_t v) const;
  std::uint64_t bucket_upper(std::uint32_t index) const;

  unsigned bits_;
  std::map<std::uint32_t, std::uint64_t> buckets_;  ///< index -> count
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Space-saving top-K heavy hitters over uint64 keys (node ids, channel
/// indices). Reported counts overestimate by at most `error`; any key
/// with true frequency above total_weight() / capacity is guaranteed
/// present. Eviction ties break deterministically: the minimum-count
/// entry with the largest key is replaced first.
class TopK {
 public:
  struct Entry {
    std::uint64_t key = 0;
    std::uint64_t count = 0;  ///< upper bound on the true frequency
    std::uint64_t error = 0;  ///< count - error <= true frequency
  };

  explicit TopK(std::size_t capacity);

  void add(std::uint64_t key, std::uint64_t weight = 1);

  /// Sums per-key counts and errors, then prunes back to capacity.
  /// Requires identical capacity. Exact and fully order/partition-
  /// invariant when capacity >= distinct keys (the campaign and engine
  /// usage); otherwise a standard space-saving approximation whose
  /// result can depend on the merge tree.
  void merge_from(const TopK& other);

  /// Entries sorted by count descending, key ascending.
  std::vector<Entry> top() const;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return entries_.size(); }
  std::uint64_t total_weight() const { return total_; }

  /// Deterministic byte estimate (entry count x entry size).
  std::uint64_t estimated_bytes() const;

  /// {"capacity":..,"total":..,"entries":[{"key":..,"count":..,
  ///  "error":..},...]} in top() order.
  std::string to_json() const;

 private:
  struct Cell {
    std::uint64_t count = 0;
    std::uint64_t error = 0;
  };
  void prune();

  std::size_t capacity_;
  std::uint64_t total_ = 0;
  std::map<std::uint64_t, Cell> entries_;
};

/// Seeded deterministic reservoir sample of an event stream: keeps the
/// `capacity` items with the smallest hashed priority mix(seed, id).
/// Because the keep/evict decision is a pure function of (seed, id),
/// the sample is invariant under arrival order and stream partitioning:
/// merging per-shard samples equals sampling the concatenated stream.
/// `id` must identify the stream position (step number, row index);
/// duplicate ids are kept as distinct items.
class ReservoirSample {
 public:
  struct Item {
    std::uint64_t id = 0;
    std::string value;         ///< caller payload (label, JSON, ...)
    std::uint64_t priority = 0;
  };

  ReservoirSample(std::size_t capacity, std::uint64_t seed);

  void add(std::uint64_t id, std::string value);

  /// Union-merge keeping the bottom `capacity` priorities. Requires
  /// identical capacity and seed.
  void merge_from(const ReservoirSample& other);

  /// Sampled items sorted by id ascending.
  std::vector<Item> items() const;

  std::size_t capacity() const { return capacity_; }
  std::uint64_t seed() const { return seed_; }
  std::uint64_t seen() const { return seen_; }

  /// Deterministic byte estimate (item count x entry size + payload
  /// lengths).
  std::uint64_t estimated_bytes() const;

  /// {"capacity":..,"seed":..,"seen":..,"items":[{"id":..,
  ///  "value":".."},...]} sorted by id.
  std::string to_json() const;

 private:
  void insert(Item item);

  std::size_t capacity_;
  std::uint64_t seed_;
  std::uint64_t seen_ = 0;
  /// Max-heap on (priority, id, value) — the front is the first evicted.
  std::vector<Item> heap_;
};

}  // namespace commroute::obs
