#include <gtest/gtest.h>

#include "support/error.hpp"
#include "checker/targeted.hpp"
#include "spp/gadgets.hpp"
#include "test_util.hpp"
#include "trace/recording.hpp"

namespace commroute::checker {
namespace {

using model::Model;
using trace::MatchKind;

// Prop. 3.10 via Ex. A.3: the REO execution on Fig. 7 cannot be exactly
// realized in R1O...
TEST(Targeted, ExampleA3NotExactlyRealizableInR1O) {
  const spp::Instance inst = spp::example_a3();
  const auto rec = testutil::record_example_a3_reo(inst);
  const auto r = find_realization(inst, Model::parse("R1O"), rec.trace,
                                  MatchKind::kExact);
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.exhaustive) << "non-realizability must be a proof";
}

// ... but it can be realized with repetition (consistent with the REO row
// R1O column entry "3" in Fig. 3).
TEST(Targeted, ExampleA3RealizableWithRepetitionInR1O) {
  const spp::Instance inst = spp::example_a3();
  const auto rec = testutil::record_example_a3_reo(inst);
  const auto r = find_realization(inst, Model::parse("R1O"), rec.trace,
                                  MatchKind::kRepetition);
  EXPECT_TRUE(r.found) << r.summary();
  EXPECT_FALSE(r.witness.empty());
}

// The obstruction is specific to processing one message at a time: R1F
// can skip over the stale vbd by reading two messages at once, so this
// particular trace is exactly realizable there.
TEST(Targeted, ExampleA3ExactlyRealizableInR1F) {
  const spp::Instance inst = spp::example_a3();
  const auto rec = testutil::record_example_a3_reo(inst);
  const auto r = find_realization(inst, Model::parse("R1F"), rec.trace,
                                  MatchKind::kExact);
  EXPECT_TRUE(r.found) << r.summary();
}

// Without the convergent-tail requirement the finite prefix *is*
// realizable in R1O (the leftover messages are simply postponed) — the
// paper's argument hinges on fairness forcing them to be processed.
TEST(Targeted, ExampleA3FinitePrefixRealizableWithoutTail) {
  const spp::Instance inst = spp::example_a3();
  const auto rec = testutil::record_example_a3_reo(inst);
  RealizationSearchOptions options;
  options.require_convergent_tail = false;
  const auto r = find_realization(inst, Model::parse("R1O"), rec.trace,
                                  MatchKind::kExact, options);
  EXPECT_TRUE(r.found);
}

// Prop. 3.11 via Ex. A.4: the REA execution on Fig. 8 cannot be realized
// with repetition in R1O, but can as a subsequence.
TEST(Targeted, ExampleA4NotRealizableWithRepetitionInR1O) {
  const spp::Instance inst = spp::example_a4();
  const auto rec = testutil::record_example_a4_rea(inst);
  const auto r = find_realization(inst, Model::parse("R1O"), rec.trace,
                                  MatchKind::kRepetition);
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.exhaustive);
}

TEST(Targeted, ExampleA4RealizableAsSubsequenceInR1O) {
  const spp::Instance inst = spp::example_a4();
  const auto rec = testutil::record_example_a4_rea(inst);
  const auto r = find_realization(inst, Model::parse("R1O"), rec.trace,
                                  MatchKind::kSubsequence);
  EXPECT_TRUE(r.found) << r.summary();
}

// Prop. 3.12 via Ex. A.5: the REA execution on Fig. 9 cannot be exactly
// realized in R1S, but can with repetition (REA row R1S column = "3").
TEST(Targeted, ExampleA5NotExactlyRealizableInR1S) {
  const spp::Instance inst = spp::example_a5();
  const auto rec = testutil::record_example_a5_rea(inst);
  const auto r = find_realization(inst, Model::parse("R1S"), rec.trace,
                                  MatchKind::kExact);
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.exhaustive);
}

TEST(Targeted, ExampleA5RealizableWithRepetitionInR1S) {
  const spp::Instance inst = spp::example_a5();
  const auto rec = testutil::record_example_a5_rea(inst);
  const auto r = find_realization(inst, Model::parse("R1S"), rec.trace,
                                  MatchKind::kRepetition);
  EXPECT_TRUE(r.found) << r.summary();
}

// Every model realizes its own executions exactly (reflexivity).
TEST(Targeted, SelfRealizationSucceeds) {
  const spp::Instance inst = spp::example_a4();
  const auto rec = testutil::record_example_a4_rea(inst);
  const auto r = find_realization(inst, Model::parse("REA"), rec.trace,
                                  MatchKind::kExact);
  EXPECT_TRUE(r.found);
}

// Witnesses replay to traces that actually realize the target.
TEST(Targeted, WitnessReplayMatchesClaimedSense) {
  const spp::Instance inst = spp::example_a4();
  const auto rec = testutil::record_example_a4_rea(inst);
  const auto r = find_realization(inst, Model::parse("R1O"), rec.trace,
                                  MatchKind::kSubsequence);
  ASSERT_TRUE(r.found);
  const auto replay =
      trace::record_script(inst, r.witness, Model::parse("R1O"));
  EXPECT_TRUE(trace::matches_as_subsequence(rec.trace, replay.trace));
}

TEST(Targeted, RejectsForeignInitialAssignment) {
  const spp::Instance inst = spp::example_a4();
  trace::Trace bogus(trace::Assignment(inst.node_count(),
                                       inst.parse_path("ad")));
  EXPECT_THROW(find_realization(inst, Model::parse("R1O"), bogus,
                                MatchKind::kExact),
               PreconditionError);
}

TEST(Targeted, SenseNoneIsRejected) {
  const spp::Instance inst = spp::example_a4();
  const auto rec = testutil::record_example_a4_rea(inst);
  EXPECT_THROW(find_realization(inst, Model::parse("R1O"), rec.trace,
                                MatchKind::kNone),
               PreconditionError);
}

}  // namespace
}  // namespace commroute::checker
