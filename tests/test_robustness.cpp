// Robustness tests: malformed inputs must produce typed errors, never
// crashes or silent misbehavior.
#include <gtest/gtest.h>

#include "engine/executor.hpp"
#include "model/model.hpp"
#include "spp/builder.hpp"
#include "spp/gadgets.hpp"
#include "spp/serialize.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace commroute {
namespace {

TEST(Robustness, SerializerSurvivesGarbageInput) {
  Rng rng(99);
  const std::string alphabet =
      "dest edge prefer xyd: #\n\t ,0123456789abc";
  for (int trial = 0; trial < 300; ++trial) {
    std::string soup;
    const std::size_t len = rng.below(120);
    for (std::size_t i = 0; i < len; ++i) {
      soup += alphabet[static_cast<std::size_t>(
          rng.below(alphabet.size()))];
    }
    try {
      spp::parse_instance(soup);
    } catch (const Error&) {
      // Typed errors are the only acceptable failure mode.
    }
  }
}

TEST(Robustness, ModelParserSurvivesGarbage) {
  Rng rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    std::string name;
    const std::size_t len = rng.below(6);
    for (std::size_t i = 0; i < len; ++i) {
      name += static_cast<char>('A' + rng.below(26));
    }
    try {
      model::Model::parse(name);
    } catch (const ParseError&) {
    }
  }
}

TEST(Robustness, PathParserSurvivesGarbage) {
  const spp::Instance inst = spp::disagree();
  Rng rng(13);
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    const std::size_t len = rng.below(10);
    for (std::size_t i = 0; i < len; ++i) {
      text += static_cast<char>('a' + rng.below(26));
    }
    try {
      inst.parse_path(text);
    } catch (const Error&) {
    }
  }
}

TEST(Robustness, ExecutorRejectsMalformedStepsAtomically) {
  // A step failing validation must not partially mutate state.
  const spp::Instance inst = spp::disagree();
  engine::NetworkState state(inst);
  const engine::NetworkState before = state;
  model::ActivationStep bad;
  bad.nodes = {inst.graph().node("x")};
  bad.reads = {model::ReadSpec{inst.graph().channel(
                                   inst.graph().node("x"),
                                   inst.graph().node("y")),
                               1u,
                               {}}};  // channel into y, not into x
  EXPECT_THROW(engine::execute_step(state, bad), PreconditionError);
  EXPECT_TRUE(state == before);
}

TEST(Robustness, BuilderRejectsPathsThroughUnknownNodes) {
  spp::InstanceBuilder b("d");
  b.edge("x", "d");
  b.prefer("x", {"xqd"});
  EXPECT_THROW(b.build(), Error);
}

TEST(Robustness, DegenerateInstanceSingleEdge) {
  // The smallest legal instance: one node plus the destination.
  spp::InstanceBuilder b("d");
  b.edge("x", "d");
  b.prefer("x", {"xd"});
  const spp::Instance inst = b.build();
  engine::NetworkState state(inst);
  engine::execute_step(state,
                       model::poll_all_step(inst, inst.destination()));
  engine::execute_step(
      state, model::poll_all_step(inst, inst.graph().node("x")));
  EXPECT_EQ(state.assignment(inst.graph().node("x")),
            inst.parse_path("xd"));
}

TEST(Robustness, NodeWithNoPermittedPaths) {
  // A node may permit nothing: it must stay at epsilon forever without
  // disturbing anyone.
  spp::InstanceBuilder b("d");
  b.edge("x", "d").edge("y", "d");
  b.prefer("x", {"xd"});
  // y gets no prefer() call at all.
  const spp::Instance inst = b.build();
  engine::NetworkState state(inst);
  engine::execute_step(state,
                       model::poll_all_step(inst, inst.destination()));
  const NodeId y = inst.graph().node("y");
  engine::execute_step(state, model::poll_all_step(inst, y));
  EXPECT_TRUE(state.assignment(y).empty());
}

}  // namespace
}  // namespace commroute
