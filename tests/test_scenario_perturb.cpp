// Ranking perturbations: determinism, provenance, and replayable edits.
#include <gtest/gtest.h>

#include "bgp/compile.hpp"
#include "bgp/random_topology.hpp"
#include "scenario/perturb.hpp"
#include "spp/gadgets.hpp"
#include "spp/serialize.hpp"
#include "support/error.hpp"

namespace commroute::scenario {
namespace {

std::string fingerprint(const spp::Instance& inst) {
  return spp::format_instance(inst);
}

TEST(Perturb, PureInInstanceSpecSeed) {
  const spp::Instance base = spp::good_gadget();
  PerturbSpec spec;
  spec.kind = PerturbKind::kRankSwap;
  spec.count = 2;
  const PerturbResult a = perturb(base, spec, 99);
  const PerturbResult b = perturb(base, spec, 99);
  EXPECT_EQ(fingerprint(a.instance), fingerprint(b.instance));
  EXPECT_EQ(a.record.to_json(base), b.record.to_json(base));
  // A different seed explores a different site (with overwhelming
  // probability on this instance; pinned by the fixed seeds here).
  const PerturbResult c = perturb(base, spec, 100);
  EXPECT_NE(a.record.to_json(base), c.record.to_json(base));
}

TEST(Perturb, TieBreakFlipSwapsAdjacentRanks) {
  const spp::Instance base = spp::good_gadget();
  PerturbSpec spec;
  spec.kind = PerturbKind::kTieBreakFlip;
  spec.count = 1;
  const PerturbResult r = perturb(base, spec, 7);
  ASSERT_EQ(r.record.edits.size(), 1u);
  const PerturbEdit& edit = r.record.edits[0];
  EXPECT_EQ(edit.op, PerturbEdit::Op::kSwap);
  // The two paths were adjacent in the base ranking and are exchanged
  // in the perturbed instance.
  const auto rank_a = base.rank(edit.node, edit.a);
  const auto rank_b = base.rank(edit.node, edit.b);
  ASSERT_TRUE(rank_a.has_value());
  ASSERT_TRUE(rank_b.has_value());
  EXPECT_EQ(*rank_a + 1, *rank_b);
  EXPECT_EQ(r.instance.rank(edit.node, edit.a), rank_b);
  EXPECT_EQ(r.instance.rank(edit.node, edit.b), rank_a);
}

TEST(Perturb, EditsReplayThroughApplyEdits) {
  const spp::Instance base = spp::good_gadget();
  PerturbSpec spec;
  spec.kind = PerturbKind::kRankSwap;
  spec.count = 2;
  spec.window = 2;
  const PerturbResult r = perturb(base, spec, 3);
  std::size_t applied = 0;
  const spp::Instance again = apply_edits(base, r.record.edits, &applied);
  EXPECT_EQ(applied, r.record.edits.size());
  EXPECT_EQ(fingerprint(again), fingerprint(r.instance));
}

TEST(Perturb, DeleteNeverRemovesANodesLastPath) {
  // DISAGREE has exactly one non-trivial path alternative per node;
  // hammer it with deletions and check everyone keeps a route.
  const spp::Instance base = spp::disagree();
  PerturbSpec spec;
  spec.kind = PerturbKind::kPathDelete;
  spec.count = 50;  // far more than the eligible sites
  const PerturbResult r = perturb(base, spec, 11);
  for (NodeId v = 0; v < r.instance.node_count(); ++v) {
    EXPECT_FALSE(r.instance.permitted(v).empty());
  }
  EXPECT_LT(r.record.edits.size(), 50u);
}

TEST(Perturb, LabelsRoundTripThroughParse) {
  for (const char* label : {"tiebreak:1", "rankswap:2", "delete:3"}) {
    const PerturbSpec spec = parse_perturb_spec(label);
    EXPECT_EQ(spec.label(), label);
  }
  EXPECT_EQ(parse_perturb_spec("tiebreak").count, 1u);
  EXPECT_THROW(parse_perturb_spec("melt:1"), ParseError);
  EXPECT_THROW(parse_perturb_spec("tiebreak:x"), ParseError);
}

TEST(Perturb, GaoRexfordViolationNeedsATopology) {
  const spp::Instance base = spp::good_gadget();
  PerturbSpec spec;
  spec.kind = PerturbKind::kGaoRexfordViolation;
  EXPECT_THROW(perturb(base, spec, 1), PreconditionError);
}

TEST(Perturb, GaoRexfordViolationPromotesNonCustomerRoute) {
  Rng rng(23);
  const auto topo = bgp::random_as_topology(rng, {.as_count = 6});
  const spp::Instance inst = bgp::compile_gao_rexford(topo, "as0");
  PerturbSpec spec;
  spec.kind = PerturbKind::kGaoRexfordViolation;
  spec.count = 1;
  spec.topology = topo;
  const PerturbResult r = perturb(inst, spec, 5);
  // The compiled GR instance ranks customer routes first; a violation
  // must move some path, and it replays like any other edit.
  if (!r.record.edits.empty()) {
    std::size_t applied = 0;
    const spp::Instance again = apply_edits(inst, r.record.edits, &applied);
    EXPECT_EQ(applied, r.record.edits.size());
    EXPECT_EQ(fingerprint(again), fingerprint(r.instance));
    EXPECT_NE(fingerprint(again), fingerprint(inst));
  }
}

TEST(Perturb, ExportPolicyIsCarriedOver) {
  Rng rng(29);
  const auto topo = bgp::random_as_topology(rng, {.as_count = 5});
  const spp::Instance inst = bgp::compile_gao_rexford(topo, "as0");
  ASSERT_NE(inst.export_policy_ptr(), nullptr);
  PerturbSpec spec;
  spec.kind = PerturbKind::kTieBreakFlip;
  const PerturbResult r = perturb(inst, spec, 2);
  EXPECT_EQ(r.instance.export_policy_ptr(), inst.export_policy_ptr());
}

}  // namespace
}  // namespace commroute::scenario
