#include <gtest/gtest.h>

#include "checker/explorer.hpp"
#include "engine/executor.hpp"
#include "engine/runner.hpp"
#include "engine/scheduler.hpp"
#include "model/script_io.hpp"
#include "spp/gadgets.hpp"
#include "support/error.hpp"

namespace commroute::model {
namespace {

TEST(ScriptIo, ParsesBasicSteps) {
  const spp::Instance inst = spp::disagree();
  const ActivationScript script = parse_script(inst, R"(
    # DISAGREE warm-up
    d | x->d f=1
    x | d->x f=inf
    y | d->y f=2 g={1}
  )");
  ASSERT_EQ(script.size(), 3u);
  EXPECT_EQ(script[0].node(), inst.graph().node("d"));
  EXPECT_FALSE(script[1].reads[0].count.has_value());
  EXPECT_EQ(*script[2].reads[0].count, 2u);
  EXPECT_EQ(script[2].reads[0].drops, (std::vector<std::uint32_t>{1}));
}

TEST(ScriptIo, ParsesMultiNodeSteps) {
  const spp::Instance inst = spp::disagree();
  const ActivationScript script =
      parse_script(inst, "x,y | d->x f=inf ; d->y f=inf\n");
  ASSERT_EQ(script.size(), 1u);
  EXPECT_EQ(script[0].nodes.size(), 2u);
  EXPECT_EQ(script[0].reads.size(), 2u);
}

TEST(ScriptIo, ErrorsCarryLineNumbers) {
  const spp::Instance inst = spp::disagree();
  try {
    parse_script(inst, "d | x->d f=1\nz | x->d f=1\n");
    FAIL() << "expected throw";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ScriptIo, RejectsMalformedSteps) {
  const spp::Instance inst = spp::disagree();
  EXPECT_THROW(parse_script(inst, "d x->d f=1\n"), ParseError);  // no bar
  EXPECT_THROW(parse_script(inst, "d | x=>d f=1\n"), ParseError);
  EXPECT_THROW(parse_script(inst, "d | x->d\n"), ParseError);  // no f
  EXPECT_THROW(parse_script(inst, "d | x->d f=abc\n"), ParseError);
  EXPECT_THROW(parse_script(inst, "d | x->d f=1 q=2\n"), ParseError);
  // Structurally invalid (channel into x read by d).
  EXPECT_THROW(parse_script(inst, "d | d->x f=1\n"), PreconditionError);
}

TEST(ScriptIo, RoundTripsGeneratedScripts) {
  const spp::Instance inst = spp::example_a2();
  engine::RandomFairScheduler sched(Model::parse("UMS"), inst, Rng(3),
                                    {.drop_prob = 0.3});
  engine::NetworkState state(inst);
  ActivationScript script;
  for (int i = 0; i < 40; ++i) {
    const auto step = sched.next(state);
    engine::execute_step(state, step);
    script.push_back(step);
  }
  const std::string text = format_script(inst, script);
  const ActivationScript parsed = parse_script(inst, text);
  ASSERT_EQ(parsed.size(), script.size());
  for (std::size_t i = 0; i < script.size(); ++i) {
    EXPECT_EQ(parsed[i].to_string(inst), script[i].to_string(inst)) << i;
  }
  EXPECT_EQ(format_script(inst, parsed), text);
}

TEST(ScriptIo, RoundTripsCheckerWitnesses) {
  const spp::Instance inst = spp::disagree();
  const auto r = checker::explore(
      inst, Model::parse("R1O"),
      {.max_channel_length = 3, .extract_witness = true});
  ASSERT_TRUE(r.oscillation_found);
  ActivationScript script = r.witness_prefix;
  script.insert(script.end(), r.witness_cycle.begin(),
                r.witness_cycle.end());
  const ActivationScript parsed =
      parse_script(inst, format_script(inst, script));
  ASSERT_EQ(parsed.size(), script.size());
  // The parsed witness still oscillates.
  engine::ScriptedScheduler sched(parsed, r.witness_prefix.size());
  const auto run =
      engine::run(inst, sched, {.max_steps = 5 * parsed.size() + 50});
  EXPECT_EQ(run.outcome, engine::Outcome::kOscillating);
}

}  // namespace
}  // namespace commroute::model
