#include <gtest/gtest.h>

#include "model/activation.hpp"
#include "spp/gadgets.hpp"
#include "support/error.hpp"

namespace commroute::model {
namespace {

class ActivationTest : public ::testing::Test {
 protected:
  spp::Instance inst = spp::disagree();
  NodeId d = inst.graph().node("d");
  NodeId x = inst.graph().node("x");
  NodeId y = inst.graph().node("y");
};

TEST_F(ActivationTest, ValidateRejectsEmptyU) {
  ActivationStep step;
  EXPECT_THROW(validate_step(inst, step), PreconditionError);
}

TEST_F(ActivationTest, ValidateRejectsUnsortedU) {
  ActivationStep step;
  step.nodes = {y, x};
  EXPECT_THROW(validate_step(inst, step), PreconditionError);
  step.nodes = {x, x};
  EXPECT_THROW(validate_step(inst, step), PreconditionError);
}

TEST_F(ActivationTest, ValidateRejectsForeignChannel) {
  // x updating but reading a channel into y.
  ActivationStep step = make_step(x, {ReadSpec{inst.graph().channel(x, y),
                                               1u,
                                               {}}});
  EXPECT_THROW(validate_step(inst, step), PreconditionError);
}

TEST_F(ActivationTest, ValidateRejectsDuplicateChannel) {
  const ChannelIdx c = inst.graph().channel(y, x);
  ActivationStep step = make_step(x, {ReadSpec{c, 1u, {}},
                                      ReadSpec{c, 1u, {}}});
  EXPECT_THROW(validate_step(inst, step), PreconditionError);
}

TEST_F(ActivationTest, ValidateRejectsBadDropSets) {
  const ChannelIdx c = inst.graph().channel(y, x);
  // Drops with f = 0.
  EXPECT_THROW(
      validate_step(inst, make_step(x, {ReadSpec{c, 0u, {1}}})),
      PreconditionError);
  // Drop index above f.
  EXPECT_THROW(
      validate_step(inst, make_step(x, {ReadSpec{c, 2u, {3}}})),
      PreconditionError);
  // Zero index (drops are 1-based).
  EXPECT_THROW(
      validate_step(inst, make_step(x, {ReadSpec{c, 2u, {0}}})),
      PreconditionError);
  // Unsorted drops.
  EXPECT_THROW(
      validate_step(inst, make_step(x, {ReadSpec{c, 3u, {2, 1}}})),
      PreconditionError);
  // f = infinity allows any indices.
  EXPECT_NO_THROW(
      validate_step(inst, make_step(x, {ReadSpec{c, std::nullopt, {7}}})));
}

TEST_F(ActivationTest, SingleNodeRequiredByDefault) {
  ActivationStep step = make_multi_step({x, y}, {});
  std::string why;
  EXPECT_FALSE(step_allowed(Model::parse("RMS"), inst, step, &why));
  EXPECT_NE(why.find("one updating node"), std::string::npos);
  EXPECT_TRUE(step_allowed(Model::parse("RMS"), inst, step, &why, false));
}

TEST_F(ActivationTest, ReliableModelsRejectDrops) {
  const ChannelIdx c = inst.graph().channel(y, x);
  const ActivationStep step = make_step(x, {ReadSpec{c, 1u, {1}}});
  EXPECT_FALSE(step_allowed(Model::parse("R1O"), inst, step));
  EXPECT_TRUE(step_allowed(Model::parse("U1O"), inst, step));
}

TEST_F(ActivationTest, NeighborModeOne) {
  const Model m = Model::parse("R1O");
  EXPECT_TRUE(step_allowed(m, inst, read_one_step(inst, x, y)));
  EXPECT_FALSE(step_allowed(m, inst, read_every_one_step(inst, x)));
  EXPECT_FALSE(step_allowed(m, inst, make_step(x, {})));
}

TEST_F(ActivationTest, NeighborModeEvery) {
  const Model m = Model::parse("REO");
  EXPECT_TRUE(step_allowed(m, inst, read_every_one_step(inst, x)));
  EXPECT_FALSE(step_allowed(m, inst, read_one_step(inst, x, y)));
}

TEST_F(ActivationTest, NeighborModeMultipleAllowsAnySubset) {
  const Model m = Model::parse("RMO");
  EXPECT_TRUE(step_allowed(m, inst, make_step(x, {})));
  EXPECT_TRUE(step_allowed(m, inst, read_one_step(inst, x, y)));
  EXPECT_TRUE(step_allowed(m, inst, read_every_one_step(inst, x)));
}

TEST_F(ActivationTest, MessageModeOneRequiresExactlyOne) {
  const Model m = Model::parse("R1O");
  const ChannelIdx c = inst.graph().channel(y, x);
  EXPECT_TRUE(step_allowed(m, inst, make_step(x, {ReadSpec{c, 1u, {}}})));
  EXPECT_FALSE(step_allowed(m, inst, make_step(x, {ReadSpec{c, 2u, {}}})));
  EXPECT_FALSE(step_allowed(m, inst, make_step(x, {ReadSpec{c, 0u, {}}})));
  EXPECT_FALSE(
      step_allowed(m, inst, make_step(x, {ReadSpec{c, std::nullopt, {}}})));
}

TEST_F(ActivationTest, MessageModeAllRequiresInfinity) {
  const Model m = Model::parse("R1A");
  const ChannelIdx c = inst.graph().channel(y, x);
  EXPECT_TRUE(
      step_allowed(m, inst, make_step(x, {ReadSpec{c, std::nullopt, {}}})));
  EXPECT_FALSE(step_allowed(m, inst, make_step(x, {ReadSpec{c, 1u, {}}})));
}

TEST_F(ActivationTest, MessageModeForcedRejectsZero) {
  const Model m = Model::parse("R1F");
  const ChannelIdx c = inst.graph().channel(y, x);
  EXPECT_TRUE(step_allowed(m, inst, make_step(x, {ReadSpec{c, 1u, {}}})));
  EXPECT_TRUE(step_allowed(m, inst, make_step(x, {ReadSpec{c, 5u, {}}})));
  EXPECT_TRUE(
      step_allowed(m, inst, make_step(x, {ReadSpec{c, std::nullopt, {}}})));
  EXPECT_FALSE(step_allowed(m, inst, make_step(x, {ReadSpec{c, 0u, {}}})));
}

TEST_F(ActivationTest, MessageModeSomeAllowsEverything) {
  const Model m = Model::parse("R1S");
  const ChannelIdx c = inst.graph().channel(y, x);
  for (const auto count : {std::optional<std::uint32_t>{0u},
                           std::optional<std::uint32_t>{1u},
                           std::optional<std::uint32_t>{7u},
                           std::optional<std::uint32_t>{}}) {
    EXPECT_TRUE(step_allowed(m, inst, make_step(x, {ReadSpec{c, count, {}}})));
  }
}

TEST_F(ActivationTest, ContainmentsOfProp33HoldOnSteps) {
  // Any R1O step is a legal step of R1F, R1S, RMO, U1O (Prop. 3.3).
  const ActivationStep step = read_one_step(inst, x, y);
  for (const char* m : {"R1O", "R1F", "R1S", "RMO", "RMF", "RMS", "U1O"}) {
    EXPECT_TRUE(step_allowed(Model::parse(m), inst, step)) << m;
  }
  // Any REA step is legal in REF, RES, MEA-family and UEA.
  const ActivationStep poll = poll_all_step(inst, x);
  for (const char* m : {"REA", "REF", "RES", "RMA", "RMF", "RMS", "UEA"}) {
    EXPECT_TRUE(step_allowed(Model::parse(m), inst, poll)) << m;
  }
}

TEST_F(ActivationTest, RequireStepAllowedThrowsWithDiagnostic) {
  try {
    require_step_allowed(Model::parse("R1O"), inst,
                         read_every_one_step(inst, x));
    FAIL() << "expected throw";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("R1O"), std::string::npos);
  }
}

TEST_F(ActivationTest, ToStringShowsQuadruple) {
  const ActivationStep step = read_one_step(inst, x, y, true);
  const std::string s = step.to_string(inst);
  EXPECT_NE(s.find("U={x}"), std::string::npos);
  EXPECT_NE(s.find("y->x"), std::string::npos);
  EXPECT_NE(s.find("f=1"), std::string::npos);
  EXPECT_NE(s.find("g={1}"), std::string::npos);
}

TEST_F(ActivationTest, NodeAccessorRequiresSingleton) {
  EXPECT_EQ(read_one_step(inst, x, y).node(), x);
  EXPECT_THROW(make_multi_step({x, y}, {}).node(), PreconditionError);
}

TEST_F(ActivationTest, MakeMultiStepSortsAndDedupes) {
  const ActivationStep step = make_multi_step({y, x, y}, {});
  ASSERT_EQ(step.nodes.size(), 2u);
  EXPECT_EQ(step.nodes[0], x);
  EXPECT_EQ(step.nodes[1], y);
}

}  // namespace
}  // namespace commroute::model
