#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace commroute {
namespace {

TEST(Error, RequireThrowsPreconditionWithContext) {
  try {
    CR_REQUIRE(1 == 2, "one is not two");
    FAIL() << "expected throw";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("one is not two"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Error, AssertThrowsInvariant) {
  EXPECT_THROW(CR_ASSERT(false, "broken"), InvariantError);
}

TEST(Error, HierarchyRootsAtError) {
  EXPECT_THROW(
      { throw ParseError("x"); }, Error);
  EXPECT_THROW(
      { throw InvariantError("x"); }, Error);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(13), 13u);
  }
  EXPECT_THROW(rng.below(0), PreconditionError);
}

TEST(Rng, BelowHitsAllResidues) {
  Rng rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(rng.below(5));
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 300; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_THROW(rng.range(3, 2), PreconditionError);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, GoldenValuesPinTheGeneratorAlgorithm) {
  // First outputs of Rng(42) (xoshiro256** seeded via SplitMix64).
  // These values pin the algorithm across refactors: seeded streams are
  // part of the repo's reproducibility contract (campaign rows, sim
  // trajectories, and recordings all cite seeds), so any change here is
  // a silent invalidation of every published seed.
  Rng rng(42);
  EXPECT_EQ(rng.next(), 1546998764402558742ULL);
  EXPECT_EQ(rng.next(), 6990951692964543102ULL);
  EXPECT_EQ(rng.next(), 12544586762248559009ULL);
  EXPECT_EQ(rng.next(), 17057574109182124193ULL);
}

TEST(Rng, ExponentialGoldenValuesAndMean) {
  Rng rng(7);
  EXPECT_DOUBLE_EQ(rng.exponential(1000.0), 1205.8962602474496);
  EXPECT_DOUBLE_EQ(rng.exponential(1000.0), 326.77116580430908);
  EXPECT_DOUBLE_EQ(rng.exponential(1000.0), 1830.2558069134657);

  double sum = 0;
  const int n = 50000;
  Rng mean_rng(9);
  for (int i = 0; i < n; ++i) {
    const double x = mean_rng.exponential(250.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 250.0, 5.0);
  EXPECT_THROW(rng.exponential(0.0), PreconditionError);
  EXPECT_THROW(rng.exponential(-1.0), PreconditionError);
}

TEST(Rng, ExponentialConsumesExactlyOneDraw) {
  Rng a(31), b(31);
  (void)a.exponential(10.0);
  (void)b.uniform();
  // After one draw each, the streams are aligned again.
  EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ShufflePermutes) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

TEST(Rng, PickRejectsEmpty) {
  Rng rng(17);
  std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), PreconditionError);
}

TEST(Rng, SplitIndependent) {
  Rng a(42);
  Rng child = a.split();
  EXPECT_NE(a.next(), child.next());
}

TEST(Rng, ForkSeedGoldenValuesPinTheMapping) {
  // Campaign row-seed derivation and the scenario subsystem's
  // perturb/fault seeds all flow through fork_seed; these goldens pin
  // the splitmix64 mapping so artifacts stay reproducible across
  // releases.
  EXPECT_EQ(Rng::fork_seed(1, 0), 3450215046084079782ULL);
  EXPECT_EQ(Rng::fork_seed(1, 1), 3369374203500184195ULL);
  EXPECT_EQ(Rng::fork_seed(42, 7), 2835968689545215143ULL);
  EXPECT_EQ(Rng::fork_seed(0, 0), 10112892697038858331ULL);
}

TEST(Rng, ForkIsPositionIndependent) {
  // fork() keys off the constructed seed, not the draw position: a
  // parent that has already consumed draws forks the same child.
  Rng fresh(42);
  Rng drained(42);
  (void)drained.next();
  (void)drained.next();
  (void)drained.next();
  EXPECT_EQ(fresh.fork(7).next(), 14333599933464179712ULL);
  EXPECT_EQ(drained.fork(7).next(), 14333599933464179712ULL);
}

TEST(Rng, ForkGoldenValuesAndTagDecorrelation) {
  Rng rng(42);
  EXPECT_EQ(rng.fork(7).next(), 14333599933464179712ULL);
  EXPECT_EQ(rng.fork("sim").next(), 6092074383208476167ULL);
  // Distinct tags give decorrelated streams.
  EXPECT_NE(rng.fork(0).next(), rng.fork(1).next());
  EXPECT_NE(rng.fork("sim").next(), rng.fork("perturb").next());
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  hello \t"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, SplitTrimmedDropsEmpties) {
  const auto parts = split_trimmed(" a, b ,, c ", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, JoinRoundTrip) {
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(join({}, "-"), "");
  EXPECT_EQ(join({"only"}, ", "), "only");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with(">=3", ">="));
  EXPECT_FALSE(starts_with("3", ">="));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(Hash, RangeHashDistinguishesLengthAndOrder) {
  const std::vector<int> a{1, 2, 3};
  const std::vector<int> b{3, 2, 1};
  const std::vector<int> c{1, 2};
  EXPECT_NE(hash_range(a), hash_range(b));
  EXPECT_NE(hash_range(a), hash_range(c));
  EXPECT_EQ(hash_range(a), hash_range(std::vector<int>{1, 2, 3}));
}

TEST(Table, RendersHeaderAndAlignment) {
  TextTable t;
  t.set_header({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Every line has the same length (padded columns).
  std::size_t first_len = out.find('\n');
  EXPECT_NE(first_len, std::string::npos);
}

TEST(Csv, QuoteLeavesSafeFieldsAlone) {
  EXPECT_EQ(csv_quote("plain"), "plain");
  EXPECT_EQ(csv_quote(""), "");
  EXPECT_EQ(csv_quote("with space"), "with space");
}

TEST(Csv, QuoteEscapesDelimitersAndQuotes) {
  EXPECT_EQ(csv_quote("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_quote("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_quote("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_quote("cr\rhere"), "\"cr\rhere\"");
}

TEST(Csv, ParseRoundTripsHostileFields) {
  const std::vector<std::string> fields{
      "plain", "a,b", "say \"hi\"", "", "multi\nline", "tail"};
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) {
      line += ',';
    }
    line += csv_quote(fields[i]);
  }
  line += '\n';
  const auto records = csv_parse(line);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], fields);
}

TEST(Csv, ParseHandlesCrlfAndMissingTrailingNewline) {
  const auto records = csv_parse("a,b\r\nc,d");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(records[1], (std::vector<std::string>{"c", "d"}));
}

TEST(Csv, ParseRejectsUnterminatedQuote) {
  EXPECT_THROW(csv_parse("\"oops"), PreconditionError);
}

TEST(Strings, SanitizePathComponent) {
  EXPECT_EQ(sanitize_path_component("safe-name_1.0"), "safe-name_1.0");
  EXPECT_EQ(sanitize_path_component("a/b"), "a_b");
  EXPECT_EQ(sanitize_path_component("../escape"), ".._escape");
  EXPECT_EQ(sanitize_path_component("sp ace:colon"), "sp_ace_colon");
  EXPECT_EQ(sanitize_path_component(""), "_");
}

TEST(Table, SeparatorAndShortRows) {
  TextTable t;
  t.set_header({"a", "b", "c"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2", "3", "4"});
  const std::string out = t.render();
  EXPECT_NE(out.find("---"), std::string::npos);
}

}  // namespace
}  // namespace commroute
