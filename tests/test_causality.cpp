// Causal provenance: happens-before DAG construction (online during
// engine::run, offline from recordings), critical-path extraction,
// influence and root-cause analyses — exercised on the paper's gadgets
// under deterministic, randomized, and virtual-time schedules.
#include <gtest/gtest.h>

#include <algorithm>

#include "engine/runner.hpp"
#include "obs/causality.hpp"
#include "sim/sim_runner.hpp"
#include "spp/gadgets.hpp"
#include "support/error.hpp"
#include "trace/recording_io.hpp"

namespace commroute {
namespace {

using model::Model;

engine::RunResult causal_run(const spp::Instance& instance,
                             const std::string& model_name,
                             engine::FlightRecorderOptions::Mode mode =
                                 engine::FlightRecorderOptions::Mode::kOff,
                             std::size_t ring = 16) {
  const Model m = Model::parse(model_name);
  engine::RoundRobinScheduler sched(m, instance);
  engine::RunOptions options;
  options.enforce_model = m;
  options.causality = true;
  options.flight.mode = mode;
  options.flight.ring_capacity = ring;
  return engine::run(instance, sched, options);
}

void expect_graphs_equal(const obs::CausalityGraph& a,
                         const obs::CausalityGraph& b) {
  EXPECT_EQ(a.truncated(), b.truncated());
  EXPECT_EQ(a.timed(), b.timed());
  EXPECT_EQ(a.first_step(), b.first_step());
  ASSERT_EQ(a.activations().size(), b.activations().size());
  for (std::size_t i = 0; i < a.activations().size(); ++i) {
    const obs::CausalActivation& x = a.activations()[i];
    const obs::CausalActivation& y = b.activations()[i];
    EXPECT_EQ(x.step, y.step) << "activation " << i;
    EXPECT_EQ(x.node, y.node) << "activation " << i;
    EXPECT_EQ(x.changed, y.changed) << "activation " << i;
    EXPECT_EQ(x.t_us, y.t_us) << "activation " << i;
    EXPECT_EQ(x.depth, y.depth) << "activation " << i;
    EXPECT_EQ(x.prog_parent, y.prog_parent) << "activation " << i;
    EXPECT_EQ(x.adopted, y.adopted) << "activation " << i;
    EXPECT_EQ(x.adoption_unknown, y.adoption_unknown) << "activation " << i;
    EXPECT_EQ(x.consumed, y.consumed) << "activation " << i;
  }
  ASSERT_EQ(a.messages().size(), b.messages().size());
  for (std::size_t i = 0; i < a.messages().size(); ++i) {
    const obs::CausalMessage& x = a.messages()[i];
    const obs::CausalMessage& y = b.messages()[i];
    EXPECT_EQ(x.channel, y.channel) << "message " << i;
    EXPECT_EQ(x.sender, y.sender) << "message " << i;
    EXPECT_EQ(x.consumer, y.consumer) << "message " << i;
    EXPECT_EQ(x.send_step, y.send_step) << "message " << i;
    EXPECT_EQ(x.consume_step, y.consume_step) << "message " << i;
    EXPECT_EQ(x.dropped, y.dropped) << "message " << i;
  }
}

TEST(Causality, OnlineGraphOnBadGadget) {
  const spp::Instance bad = spp::bad_gadget();
  const engine::RunResult run = causal_run(bad, "R1O");
  ASSERT_TRUE(run.causality.has_value());
  const obs::CausalityGraph& graph = *run.causality;

  // Round-robin steps activate exactly one node each.
  EXPECT_EQ(graph.activations().size(), run.steps);
  EXPECT_EQ(graph.messages().size(), run.messages_sent);
  EXPECT_FALSE(graph.truncated());
  EXPECT_FALSE(graph.timed());

  EXPECT_GT(run.critical_path_len, 0u);
  EXPECT_EQ(run.critical_path_len, graph.critical_path_len());

  const std::vector<obs::CausalLink> chain = graph.critical_path();
  ASSERT_EQ(chain.size(), run.critical_path_len);
  EXPECT_EQ(chain.front().via, kNoChannel);  // the root has no arrival
  EXPECT_TRUE(chain.back().changed);         // ends at the last change
  for (std::size_t i = 1; i < chain.size(); ++i) {
    EXPECT_LT(chain[i - 1].step, chain[i].step);
  }
  // Every hop's depth is its chain position (that is what makes the
  // chain length equal the terminal's depth).
  for (std::size_t i = 0; i < chain.size(); ++i) {
    EXPECT_EQ(graph.activations()[chain[i].activation].depth, i + 1);
  }
}

TEST(Causality, EdgeAccountingOnCompleteRun) {
  const spp::Instance bad = spp::bad_gadget();
  const engine::RunResult run = causal_run(bad, "R1O");
  ASSERT_TRUE(run.causality.has_value());
  const obs::CausalityStats stats = run.causality->stats();

  EXPECT_EQ(stats.activations, run.steps);
  EXPECT_EQ(stats.messages, run.messages_sent);
  // Complete window: every message's sender is known.
  EXPECT_EQ(stats.emit_edges, stats.messages);
  EXPECT_EQ(stats.unknown_origin_messages, 0u);
  // Consumed + still-in-flight partitions the messages.
  EXPECT_EQ(stats.consume_edges + stats.in_flight_messages,
            stats.messages);
  // Program edges: one per activation except each node's first.
  EXPECT_EQ(stats.program_edges,
            stats.activations - bad.node_count());
  EXPECT_EQ(stats.max_depth, stats.critical_path_len);
  EXPECT_FALSE(stats.truncated);
  EXPECT_FALSE(stats.timed);
}

TEST(Causality, OnlineAndOfflineGraphsAgree) {
  const spp::Instance bad = spp::bad_gadget();
  const engine::RunResult run =
      causal_run(bad, "R1O", engine::FlightRecorderOptions::Mode::kFull);
  ASSERT_TRUE(run.causality.has_value());
  ASSERT_TRUE(run.recording.has_value());

  const obs::CausalityGraph offline =
      obs::build_causality(bad, *run.recording);
  expect_graphs_equal(*run.causality, offline);
}

TEST(Causality, DroppedMessagesStayInTheGraph) {
  const spp::Instance bad = spp::bad_gadget();
  const Model m = Model::parse("U1O");
  engine::RandomFairScheduler sched(
      m, bad, Rng(3),
      engine::RandomFairOptions{.drop_prob = 0.5, .sweep_period = 16});
  engine::RunOptions options;
  options.enforce_model = m;
  options.causality = true;
  options.max_steps = 400;
  const engine::RunResult run = engine::run(bad, sched, options);
  ASSERT_TRUE(run.causality.has_value());
  ASSERT_GT(run.messages_dropped, 0u);

  const obs::CausalityStats stats = run.causality->stats();
  EXPECT_EQ(stats.dropped_messages, run.messages_dropped);
  // A dropped message was still consumed (g decides the drop at the
  // reader), so it has a consumer and contributes a consume edge.
  for (const obs::CausalMessage& msg : run.causality->messages()) {
    if (msg.dropped) {
      EXPECT_NE(msg.consumer, obs::kNoCausalIndex);
      EXPECT_GT(msg.consume_step, 0u);
    }
  }
}

TEST(Causality, InfluenceIsDominatedByTheDestination) {
  const spp::Instance bad = spp::bad_gadget();
  const engine::RunResult run = causal_run(bad, "R1O");
  ASSERT_TRUE(run.causality.has_value());

  const std::vector<std::uint64_t> influence =
      run.causality->influence();
  ASSERT_EQ(influence.size(), bad.node_count());
  // d's boot announcement seeds every chain; every node at least
  // reaches its own activations.
  for (NodeId v = 0; v < static_cast<NodeId>(influence.size()); ++v) {
    EXPECT_GE(influence[0], influence[v]);  // node 0 is d in bad_gadget
    EXPECT_GE(influence[v], 1u);
  }
}

TEST(Causality, RootCauseChainOnCompleteRun) {
  const spp::Instance bad = spp::bad_gadget();
  const engine::RunResult run = causal_run(bad, "R1O");
  ASSERT_TRUE(run.causality.has_value());
  const obs::CausalityGraph& graph = *run.causality;

  for (NodeId v = 1; v < static_cast<NodeId>(bad.node_count()); ++v) {
    const obs::CausalityGraph::RootCause cause = graph.root_cause(v);
    EXPECT_TRUE(cause.complete);
    ASSERT_FALSE(cause.chain.empty());
    EXPECT_EQ(cause.chain.back().node, v);
    // Each adoption hop flows through a channel into the next node.
    for (std::size_t i = 1; i < cause.chain.size(); ++i) {
      EXPECT_LT(cause.chain[i - 1].step, cause.chain[i].step);
      EXPECT_NE(cause.chain[i].via, kNoChannel);
    }
  }
  // The destination never adopts anything.
  EXPECT_TRUE(graph.root_cause(0).chain.empty());
}

TEST(Causality, SimCriticalPathExplainsLastChange) {
  const spp::Instance bad = spp::bad_gadget();
  sim::SimOptions opts;
  opts.model = Model::parse("U1O");
  opts.seed = 7;
  opts.link.loss_prob = 0.2;
  opts.causality = true;
  const sim::SimResult result = sim::run(bad, opts);
  ASSERT_TRUE(result.run.causality.has_value());
  const obs::CausalityGraph& graph = *result.run.causality;

  EXPECT_TRUE(graph.timed());
  // The chain's virtual length is exactly the last-flap time: its
  // terminal is the last assignment-changing activation.
  EXPECT_EQ(result.critical_path_us, result.last_change_us);
  EXPECT_EQ(graph.critical_path_us(), result.last_change_us);
  EXPECT_EQ(result.run.critical_path_len, graph.critical_path_len());

  const std::vector<obs::CausalLink> chain = graph.critical_path();
  ASSERT_FALSE(chain.empty());
  EXPECT_EQ(chain.back().t_us, result.last_change_us);
  for (std::size_t i = 1; i < chain.size(); ++i) {
    EXPECT_LE(chain[i - 1].t_us, chain[i].t_us);
  }
}

TEST(Causality, SimOnlineAndOfflineGraphsAgree) {
  const spp::Instance bad = spp::bad_gadget();
  sim::SimOptions opts;
  opts.model = Model::parse("U1O");
  opts.seed = 7;
  opts.link.loss_prob = 0.2;
  opts.causality = true;
  opts.flight.mode = engine::FlightRecorderOptions::Mode::kFull;
  const sim::SimResult result = sim::run(bad, opts);
  ASSERT_TRUE(result.run.causality.has_value());
  ASSERT_TRUE(result.run.recording.has_value());

  // The recording carries per-step t_us, so the offline graph is timed
  // and identical to the online one.
  const obs::CausalityGraph offline =
      obs::build_causality(bad, *result.run.recording);
  EXPECT_TRUE(offline.timed());
  expect_graphs_equal(*result.run.causality, offline);
}

TEST(Causality, RingWindowIsTruncatedButAnalyzable) {
  const spp::Instance bad = spp::bad_gadget();
  const engine::RunResult run =
      causal_run(bad, "R1O", engine::FlightRecorderOptions::Mode::kRing,
                 /*ring=*/16);
  ASSERT_TRUE(run.recording.has_value());
  ASSERT_GT(run.recording->meta.first_step, 1u);

  const obs::CausalityGraph graph =
      obs::build_causality(bad, *run.recording);
  EXPECT_TRUE(graph.truncated());
  EXPECT_EQ(graph.first_step(), run.recording->meta.first_step);
  EXPECT_EQ(graph.activations().size(), run.recording->steps.size());
  // Messages consumed inside the window but sent before it surface as
  // unknown-origin vertices instead of being silently dropped.
  EXPECT_GT(graph.unknown_origin_messages(), 0u);
  const obs::CausalityStats stats = graph.stats();
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.unknown_origin_messages,
            graph.unknown_origin_messages());
  // The window still has a critical path (a lower bound), and it fits
  // inside the window.
  EXPECT_GT(stats.critical_path_len, 0u);
  EXPECT_LE(stats.critical_path_len, run.recording->steps.size());
  const std::vector<obs::CausalLink> chain = graph.critical_path();
  EXPECT_EQ(chain.size(), stats.critical_path_len);
  for (const obs::CausalLink& link : chain) {
    EXPECT_GE(link.step, graph.first_step());
  }
}

TEST(Causality, RingWindowWithoutSelectionLosesAdoptionOnly) {
  const spp::Instance bad = spp::bad_gadget();
  const engine::RunResult run =
      causal_run(bad, "R1O", engine::FlightRecorderOptions::Mode::kRing,
                 /*ring=*/16);
  ASSERT_TRUE(run.recording.has_value());

  // Simulate a schema-v1 window: per-step I/O without "sel".
  trace::RecordingDoc v1 = *run.recording;
  for (trace::StepIo& io : v1.io) {
    io.selected.clear();
  }
  const obs::CausalityGraph graph = obs::build_causality(bad, v1);
  EXPECT_TRUE(graph.truncated());
  EXPECT_EQ(graph.stats().adoption_edges, 0u);
  bool any_changed = false;
  for (const obs::CausalActivation& a : graph.activations()) {
    if (a.changed) {
      any_changed = true;
      EXPECT_TRUE(a.adoption_unknown);
      EXPECT_EQ(a.adopted, obs::kNoCausalIndex);
    }
  }
  ASSERT_TRUE(any_changed);
  // Root-cause slices degrade to honest incompleteness, not garbage.
  for (NodeId v = 1; v < static_cast<NodeId>(bad.node_count()); ++v) {
    const obs::CausalityGraph::RootCause cause = graph.root_cause(v);
    if (!cause.chain.empty()) {
      EXPECT_FALSE(cause.complete);
    }
  }
  // Depths (and thus the critical path) never depended on adoption
  // edges, so they match the selection-aware graph.
  const obs::CausalityGraph full =
      obs::build_causality(bad, *run.recording);
  EXPECT_EQ(graph.critical_path_len(), full.critical_path_len());
}

TEST(Causality, RingWindowWithoutIoIsRejected) {
  const spp::Instance bad = spp::bad_gadget();
  const engine::RunResult run =
      causal_run(bad, "R1O", engine::FlightRecorderOptions::Mode::kRing,
                 /*ring=*/16);
  ASSERT_TRUE(run.recording.has_value());

  trace::RecordingDoc no_io = *run.recording;
  no_io.io.clear();
  EXPECT_THROW(obs::build_causality(bad, no_io), PreconditionError);
}

TEST(Causality, RebuildIsDeterministic) {
  const spp::Instance disagree = spp::disagree();
  const engine::RunResult run =
      causal_run(disagree, "R1O",
                 engine::FlightRecorderOptions::Mode::kFull);
  ASSERT_TRUE(run.recording.has_value());
  const obs::CausalityGraph a =
      obs::build_causality(disagree, *run.recording);
  const obs::CausalityGraph b =
      obs::build_causality(disagree, *run.recording);
  expect_graphs_equal(a, b);
  EXPECT_EQ(a.critical_path_len(), b.critical_path_len());
  EXPECT_EQ(a.influence(), b.influence());
}

TEST(Causality, DetachedRunsCarryNoGraph) {
  const spp::Instance bad = spp::bad_gadget();
  const Model m = Model::parse("R1O");
  engine::RoundRobinScheduler sched(m, bad);
  engine::RunOptions options;
  options.enforce_model = m;
  const engine::RunResult run = engine::run(bad, sched, options);
  EXPECT_FALSE(run.causality.has_value());
  EXPECT_EQ(run.critical_path_len, 0u);
}

}  // namespace
}  // namespace commroute
