#include <gtest/gtest.h>

#include "spp/gadgets.hpp"
#include "spp/serialize.hpp"
#include "support/error.hpp"

namespace commroute::spp {
namespace {

TEST(Serialize, ParsesDisagree) {
  const Instance inst = parse_instance(R"(
    # DISAGREE
    dest d
    edge x d
    edge y d
    edge x y
    prefer x: xyd xd
    prefer y: yxd yd
  )");
  EXPECT_EQ(inst.node_count(), 3u);
  EXPECT_EQ(inst.graph().name(inst.destination()), "d");
  const NodeId x = inst.graph().node("x");
  EXPECT_EQ(*inst.rank(x, inst.parse_path("xyd")), 0u);
  EXPECT_EQ(*inst.rank(x, inst.parse_path("xd")), 1u);
}

TEST(Serialize, ParsesMultiCharNamesWithCommas) {
  const Instance inst = parse_instance(R"(
    dest dst
    edge n1 dst
    edge n2 dst
    edge n1 n2
    prefer n1: n1 n2 dst, n1 dst
    prefer n2: n2 dst
  )");
  const NodeId n1 = inst.graph().node("n1");
  EXPECT_EQ(inst.permitted(n1).size(), 2u);
  EXPECT_EQ(inst.permitted(n1)[0].size(), 3u);
}

TEST(Serialize, CommentsAndBlankLinesIgnored)  {
  const Instance inst = parse_instance(
      "dest d   # the destination\n\n# a comment line\nedge x d\n"
      "prefer x: xd\n");
  EXPECT_EQ(inst.node_count(), 2u);
}

TEST(Serialize, ErrorsCarryLineNumbers) {
  try {
    parse_instance("dest d\nedge x\n");
    FAIL() << "expected throw";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Serialize, RejectsMalformedDirectives) {
  EXPECT_THROW(parse_instance("edge x d\n"), ParseError);  // no dest
  EXPECT_THROW(parse_instance("dest d\nfrobnicate x\n"), ParseError);
  EXPECT_THROW(parse_instance("dest d\ndest e\n"), ParseError);
  EXPECT_THROW(parse_instance("dest d\nprefer x xd\n"), ParseError);
  EXPECT_THROW(parse_instance("dest d\nprefer : xd\n"), ParseError);
}

TEST(Serialize, ValidationErrorsPropagate) {
  // Path through a missing edge fails instance validation.
  EXPECT_THROW(parse_instance(R"(
    dest d
    edge x d
    edge y d
    prefer x: xyd
  )"),
               PreconditionError);
}

TEST(Serialize, RoundTripsEveryGadget) {
  for (const auto& [name, inst] : all_gadgets()) {
    const std::string text = format_instance(inst);
    const Instance parsed = parse_instance(text);
    EXPECT_EQ(parsed.to_string(), inst.to_string()) << name;
    EXPECT_EQ(parsed.graph().edge_count(), inst.graph().edge_count())
        << name;
    EXPECT_EQ(parsed.destination(), inst.destination()) << name;
  }
}

TEST(Serialize, RoundTripsMultiCharInstances) {
  const Instance inst = disagree_chain(2);  // names x0, y0, x1, y1
  const Instance parsed = parse_instance(format_instance(inst));
  EXPECT_EQ(parsed.to_string(), inst.to_string());
}

TEST(Serialize, FormatIsStable) {
  const Instance inst = disagree();
  EXPECT_EQ(format_instance(parse_instance(format_instance(inst))),
            format_instance(inst));
}

}  // namespace
}  // namespace commroute::spp
