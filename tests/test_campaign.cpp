#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "obs/json.hpp"
#include "spp/gadgets.hpp"
#include "study/campaign.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace commroute::study {
namespace {

using model::Model;

TEST(Campaign, RunsTheFullCrossProduct) {
  const spp::Instance good = spp::good_gadget();
  CampaignSpec spec;
  spec.instances = {{"GOOD", &good}};
  spec.models = {Model::parse("RMS"), Model::parse("REA")};
  spec.schedulers = {SchedulerKind::kRoundRobin,
                     SchedulerKind::kRandomFair};
  spec.seeds = 3;
  const CampaignResult result = run_campaign(spec);
  // 2 models x (1 round-robin + 3 random seeds) = 8 rows.
  EXPECT_EQ(result.rows.size(), 8u);
  EXPECT_DOUBLE_EQ(result.outcome_rate(engine::Outcome::kConverged), 1.0);
}

TEST(Campaign, EventDrivenOnlyForMessagePassingModels) {
  const spp::Instance good = spp::good_gadget();
  CampaignSpec spec;
  spec.instances = {{"GOOD", &good}};
  spec.models = {Model::parse("R1O"), Model::parse("RMS")};
  spec.schedulers = {SchedulerKind::kEventDriven};
  const CampaignResult result = run_campaign(spec);
  ASSERT_EQ(result.rows.size(), 1u);  // RMS skipped
  EXPECT_EQ(result.rows[0].model, Model::parse("R1O"));
  EXPECT_EQ(result.rows[0].outcome, engine::Outcome::kConverged);
}

TEST(Campaign, SynchronousRevealsTheA6Oscillation) {
  const spp::Instance dis = spp::disagree();
  CampaignSpec spec;
  spec.instances = {{"DISAGREE", &dis}};
  spec.models = {Model::parse("REA")};
  spec.schedulers = {SchedulerKind::kRoundRobin,
                     SchedulerKind::kSynchronous};
  spec.max_steps = 2000;
  const CampaignResult result = run_campaign(spec);
  ASSERT_EQ(result.rows.size(), 2u);
  for (const CampaignRow& row : result.rows) {
    if (row.scheduler == SchedulerKind::kRoundRobin) {
      EXPECT_EQ(row.outcome, engine::Outcome::kConverged);
    } else {
      EXPECT_EQ(row.outcome, engine::Outcome::kOscillating);
    }
  }
}

TEST(Campaign, CsvHasHeaderAndOneLinePerRow) {
  const spp::Instance good = spp::good_gadget();
  CampaignSpec spec;
  spec.instances = {{"GOOD", &good}};
  spec.models = {Model::parse("UMS")};
  spec.schedulers = {SchedulerKind::kRandomFair};
  spec.seeds = 2;
  const CampaignResult result = run_campaign(spec);
  const std::string csv = result.to_csv();
  const std::size_t lines =
      static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, result.rows.size() + 1);
  EXPECT_NE(csv.find("instance,model,scheduler"), std::string::npos);
  EXPECT_NE(csv.find("max_channel_occupancy,peak_channel_bytes,wall_ms"),
            std::string::npos);
  EXPECT_NE(csv.find("GOOD,UMS,random-fair,0,converged"),
            std::string::npos);
}

TEST(Campaign, MedianStepsFilters) {
  const spp::Instance good = spp::good_gadget();
  const spp::Instance ring = spp::shortest_ring(8);
  CampaignSpec spec;
  spec.instances = {{"GOOD", &good}, {"RING8", &ring}};
  spec.models = {Model::parse("RMS")};
  spec.schedulers = {SchedulerKind::kRoundRobin};
  const CampaignResult result = run_campaign(spec);
  const auto ring_median = result.median_steps(
      [](const CampaignRow& row) { return row.instance == "RING8"; });
  const auto good_median = result.median_steps(
      [](const CampaignRow& row) { return row.instance == "GOOD"; });
  EXPECT_GT(ring_median, good_median);  // bigger network, more steps
  EXPECT_EQ(result.median_steps([](const CampaignRow&) { return false; }),
            0u);
}

TEST(Campaign, ValidatesSpec) {
  CampaignSpec empty;
  EXPECT_THROW(run_campaign(empty), PreconditionError);
  const spp::Instance good = spp::good_gadget();
  CampaignSpec no_models;
  no_models.instances = {{"GOOD", &good}};
  EXPECT_THROW(run_campaign(no_models), PreconditionError);
}

TEST(Campaign, UnreliableRunsRecordDrops) {
  // The drop discipline never drops a channel's newest message, so drops
  // need queue depth: the cyclic gadget's long transients provide it.
  const spp::Instance cyclic = spp::cyclic_gadget(4);
  CampaignSpec spec;
  spec.instances = {{"CYCLIC4", &cyclic}};
  spec.models = {Model::parse("UMS")};
  spec.schedulers = {SchedulerKind::kRandomFair};
  spec.seeds = 8;
  spec.max_steps = 3000;
  spec.drop_prob = 0.5;
  const CampaignResult result = run_campaign(spec);
  std::uint64_t dropped = 0;
  std::size_t occupancy = 0;
  for (const CampaignRow& row : result.rows) {
    dropped += row.messages_dropped;
    occupancy = std::max(occupancy, row.max_channel_occupancy);
  }
  EXPECT_GT(occupancy, 1u);
  EXPECT_GT(dropped, 0u);
  // Queue depth implies in-flight bytes; every row with traffic carries
  // a nonzero deterministic byte peak.
  for (const CampaignRow& row : result.rows) {
    if (row.max_channel_occupancy > 0) {
      EXPECT_GT(row.peak_channel_bytes, 0u);
      EXPECT_GE(row.peak_channel_bytes,
                row.max_channel_occupancy * sizeof(engine::Message));
    }
  }
}

TEST(Campaign, CsvCarriesPerRowWallTime) {
  const spp::Instance good = spp::good_gadget();
  CampaignSpec spec;
  spec.instances = {{"GOOD", &good}};
  spec.models = {Model::parse("RMS")};
  spec.schedulers = {SchedulerKind::kRoundRobin};
  const CampaignResult result = run_campaign(spec);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_GE(result.rows[0].wall_ms, 0.0);
  EXPECT_NE(result.to_csv().find("wall_ms"), std::string::npos);
}

TEST(Campaign, JsonExportParsesAndMatchesRows) {
  const spp::Instance good = spp::good_gadget();
  CampaignSpec spec;
  spec.instances = {{"GOOD", &good}};
  spec.models = {Model::parse("RMS"), Model::parse("REA")};
  spec.schedulers = {SchedulerKind::kRoundRobin};
  const CampaignResult result = run_campaign(spec);
  const auto parsed = obs::json_parse(result.to_json());
  ASSERT_TRUE(parsed.has_value());
  const obs::JsonValue* rows = parsed->find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_TRUE(rows->is_array());
  ASSERT_EQ(rows->as_array().size(), result.rows.size());
  const obs::JsonValue& first = rows->as_array().front();
  EXPECT_EQ(first.find("instance")->as_string(), "GOOD");
  EXPECT_EQ(first.find("outcome")->as_string(), "converged");
  EXPECT_GE(first.find("wall_ms")->as_number(), 0.0);
  const obs::JsonValue* summary = parsed->find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_DOUBLE_EQ(summary->find("converged_rate")->as_number(), 1.0);
}

TEST(Campaign, RowSeedsDifferAcrossEveryCoordinate) {
  const std::uint64_t base =
      derive_row_seed("GOOD", 3, SchedulerKind::kRandomFair, 0);
  // Each coordinate alone must change the derived stream seed.
  EXPECT_NE(base, derive_row_seed("BAD", 3, SchedulerKind::kRandomFair, 0));
  EXPECT_NE(base, derive_row_seed("GOOD", 4, SchedulerKind::kRandomFair, 0));
  EXPECT_NE(base, derive_row_seed("GOOD", 3, SchedulerKind::kRoundRobin, 0));
  EXPECT_NE(base, derive_row_seed("GOOD", 3, SchedulerKind::kRandomFair, 1));
  // ... while reruns stay bit-for-bit reproducible.
  EXPECT_EQ(base, derive_row_seed("GOOD", 3, SchedulerKind::kRandomFair, 0));
}

TEST(Campaign, TwoInstancesGetDecorrelatedRandomStreams) {
  // The old `seed * 7919 + model_index` derivation ignored the instance
  // entirely: every instance replayed the identical random-fair stream.
  Rng a(derive_row_seed("INSTANCE-A", 0, SchedulerKind::kRandomFair, 0));
  Rng b(derive_row_seed("INSTANCE-B", 0, SchedulerKind::kRandomFair, 0));
  bool diverged = false;
  for (int i = 0; i < 8 && !diverged; ++i) {
    diverged = a.next() != b.next();
  }
  EXPECT_TRUE(diverged);
  // And (seed, model) pairs no longer collide: under the old scheme
  // (seed=1, model=0) and (seed=0, model=7919) mapped to the same Rng.
  EXPECT_NE(derive_row_seed("X", 0, SchedulerKind::kRandomFair, 1),
            derive_row_seed("X", 7919, SchedulerKind::kRandomFair, 0));
}

TEST(Campaign, CsvEscapesHostileNamesAndRoundTrips) {
  const spp::Instance good = spp::good_gadget();
  CampaignSpec spec;
  // Names with the full RFC-4180 arsenal: commas, quotes, both at once.
  spec.instances = {{"evil,instance", &good},
                    {"quoted\"name", &good},
                    {"both,\"of,them\"", &good}};
  spec.models = {Model::parse("RMS")};
  spec.schedulers = {SchedulerKind::kRoundRobin};
  const CampaignResult result = run_campaign(spec);
  ASSERT_EQ(result.rows.size(), 3u);

  const auto records = csv_parse(result.to_csv());
  ASSERT_EQ(records.size(), result.rows.size() + 1);  // header + rows
  ASSERT_EQ(records[0].size(), 23u);
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    const auto& fields = records[i + 1];
    ASSERT_EQ(fields.size(), 23u) << "row " << i;
    EXPECT_EQ(fields[0], result.rows[i].instance);
    EXPECT_EQ(fields[1], result.rows[i].model.name());
    EXPECT_EQ(fields[4], "converged");
  }
}

TEST(Campaign, CausalityPopulatesCriticalPathColumns) {
  const spp::Instance good = spp::good_gadget();
  CampaignSpec spec;
  spec.instances = {{"GOOD", &good}};
  spec.models = {Model::parse("RMS")};
  spec.schedulers = {SchedulerKind::kRoundRobin};
  spec.causality = true;
  const CampaignResult result = run_campaign(spec);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_GT(result.rows[0].critical_path_len, 0u);

  const std::string csv = result.to_csv();
  EXPECT_NE(csv.find("critical_path_len,critical_path_us"),
            std::string::npos);
  // Engine rows are step-counted, not virtual-time-weighted.
  EXPECT_EQ(result.rows[0].critical_path_us, 0u);

  // Detached runs keep the columns but report zero.
  spec.causality = false;
  const CampaignResult detached = run_campaign(spec);
  ASSERT_EQ(detached.rows.size(), 1u);
  EXPECT_EQ(detached.rows[0].critical_path_len, 0u);
}

TEST(Campaign, RecordingPathsAreSanitizedAndCollisionFree) {
  const spp::Instance bad = spp::bad_gadget();
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "campaign_rec_paths")
          .string();
  std::filesystem::remove_all(dir);
  CampaignSpec spec;
  // "bad/gadget" would escape the recording dir if concatenated raw, and
  // it collides with "bad_gadget" after sanitization.
  spec.instances = {{"bad/gadget", &bad}, {"bad_gadget", &bad}};
  spec.models = {Model::parse("R1O")};
  spec.schedulers = {SchedulerKind::kRoundRobin};
  spec.max_steps = 2000;
  spec.recording_dir = dir;
  const CampaignResult result = run_campaign(spec);
  ASSERT_EQ(result.rows.size(), 2u);

  std::set<std::string> paths;
  for (const CampaignRow& row : result.rows) {
    // BAD-GADGET never converges, so both rows must have flushed.
    ASSERT_FALSE(row.recording_path.empty()) << row.instance;
    EXPECT_TRUE(std::filesystem::exists(row.recording_path))
        << row.recording_path;
    // The artifact stayed inside the recording dir...
    const auto parent =
        std::filesystem::path(row.recording_path).parent_path();
    EXPECT_EQ(parent, std::filesystem::path(dir)) << row.recording_path;
    paths.insert(row.recording_path);
  }
  // ...and the colliding sanitized names were de-collided.
  EXPECT_EQ(paths.size(), 2u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace commroute::study
