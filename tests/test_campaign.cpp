#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "spp/gadgets.hpp"
#include "study/campaign.hpp"
#include "support/error.hpp"

namespace commroute::study {
namespace {

using model::Model;

TEST(Campaign, RunsTheFullCrossProduct) {
  const spp::Instance good = spp::good_gadget();
  CampaignSpec spec;
  spec.instances = {{"GOOD", &good}};
  spec.models = {Model::parse("RMS"), Model::parse("REA")};
  spec.schedulers = {SchedulerKind::kRoundRobin,
                     SchedulerKind::kRandomFair};
  spec.seeds = 3;
  const CampaignResult result = run_campaign(spec);
  // 2 models x (1 round-robin + 3 random seeds) = 8 rows.
  EXPECT_EQ(result.rows.size(), 8u);
  EXPECT_DOUBLE_EQ(result.outcome_rate(engine::Outcome::kConverged), 1.0);
}

TEST(Campaign, EventDrivenOnlyForMessagePassingModels) {
  const spp::Instance good = spp::good_gadget();
  CampaignSpec spec;
  spec.instances = {{"GOOD", &good}};
  spec.models = {Model::parse("R1O"), Model::parse("RMS")};
  spec.schedulers = {SchedulerKind::kEventDriven};
  const CampaignResult result = run_campaign(spec);
  ASSERT_EQ(result.rows.size(), 1u);  // RMS skipped
  EXPECT_EQ(result.rows[0].model, Model::parse("R1O"));
  EXPECT_EQ(result.rows[0].outcome, engine::Outcome::kConverged);
}

TEST(Campaign, SynchronousRevealsTheA6Oscillation) {
  const spp::Instance dis = spp::disagree();
  CampaignSpec spec;
  spec.instances = {{"DISAGREE", &dis}};
  spec.models = {Model::parse("REA")};
  spec.schedulers = {SchedulerKind::kRoundRobin,
                     SchedulerKind::kSynchronous};
  spec.max_steps = 2000;
  const CampaignResult result = run_campaign(spec);
  ASSERT_EQ(result.rows.size(), 2u);
  for (const CampaignRow& row : result.rows) {
    if (row.scheduler == SchedulerKind::kRoundRobin) {
      EXPECT_EQ(row.outcome, engine::Outcome::kConverged);
    } else {
      EXPECT_EQ(row.outcome, engine::Outcome::kOscillating);
    }
  }
}

TEST(Campaign, CsvHasHeaderAndOneLinePerRow) {
  const spp::Instance good = spp::good_gadget();
  CampaignSpec spec;
  spec.instances = {{"GOOD", &good}};
  spec.models = {Model::parse("UMS")};
  spec.schedulers = {SchedulerKind::kRandomFair};
  spec.seeds = 2;
  const CampaignResult result = run_campaign(spec);
  const std::string csv = result.to_csv();
  const std::size_t lines =
      static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, result.rows.size() + 1);
  EXPECT_NE(csv.find("instance,model,scheduler"), std::string::npos);
  EXPECT_NE(csv.find("GOOD,UMS,random-fair,0,converged"),
            std::string::npos);
}

TEST(Campaign, MedianStepsFilters) {
  const spp::Instance good = spp::good_gadget();
  const spp::Instance ring = spp::shortest_ring(8);
  CampaignSpec spec;
  spec.instances = {{"GOOD", &good}, {"RING8", &ring}};
  spec.models = {Model::parse("RMS")};
  spec.schedulers = {SchedulerKind::kRoundRobin};
  const CampaignResult result = run_campaign(spec);
  const auto ring_median = result.median_steps(
      [](const CampaignRow& row) { return row.instance == "RING8"; });
  const auto good_median = result.median_steps(
      [](const CampaignRow& row) { return row.instance == "GOOD"; });
  EXPECT_GT(ring_median, good_median);  // bigger network, more steps
  EXPECT_EQ(result.median_steps([](const CampaignRow&) { return false; }),
            0u);
}

TEST(Campaign, ValidatesSpec) {
  CampaignSpec empty;
  EXPECT_THROW(run_campaign(empty), PreconditionError);
  const spp::Instance good = spp::good_gadget();
  CampaignSpec no_models;
  no_models.instances = {{"GOOD", &good}};
  EXPECT_THROW(run_campaign(no_models), PreconditionError);
}

TEST(Campaign, UnreliableRunsRecordDrops) {
  // The drop discipline never drops a channel's newest message, so drops
  // need queue depth: the cyclic gadget's long transients provide it.
  const spp::Instance cyclic = spp::cyclic_gadget(4);
  CampaignSpec spec;
  spec.instances = {{"CYCLIC4", &cyclic}};
  spec.models = {Model::parse("UMS")};
  spec.schedulers = {SchedulerKind::kRandomFair};
  spec.seeds = 4;
  spec.max_steps = 3000;
  spec.drop_prob = 0.4;
  const CampaignResult result = run_campaign(spec);
  std::uint64_t dropped = 0;
  std::size_t occupancy = 0;
  for (const CampaignRow& row : result.rows) {
    dropped += row.messages_dropped;
    occupancy = std::max(occupancy, row.max_channel_occupancy);
  }
  EXPECT_GT(occupancy, 1u);
  EXPECT_GT(dropped, 0u);
}

TEST(Campaign, CsvCarriesPerRowWallTime) {
  const spp::Instance good = spp::good_gadget();
  CampaignSpec spec;
  spec.instances = {{"GOOD", &good}};
  spec.models = {Model::parse("RMS")};
  spec.schedulers = {SchedulerKind::kRoundRobin};
  const CampaignResult result = run_campaign(spec);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_GE(result.rows[0].wall_ms, 0.0);
  EXPECT_NE(result.to_csv().find("wall_ms"), std::string::npos);
}

TEST(Campaign, JsonExportParsesAndMatchesRows) {
  const spp::Instance good = spp::good_gadget();
  CampaignSpec spec;
  spec.instances = {{"GOOD", &good}};
  spec.models = {Model::parse("RMS"), Model::parse("REA")};
  spec.schedulers = {SchedulerKind::kRoundRobin};
  const CampaignResult result = run_campaign(spec);
  const auto parsed = obs::json_parse(result.to_json());
  ASSERT_TRUE(parsed.has_value());
  const obs::JsonValue* rows = parsed->find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_TRUE(rows->is_array());
  ASSERT_EQ(rows->as_array().size(), result.rows.size());
  const obs::JsonValue& first = rows->as_array().front();
  EXPECT_EQ(first.find("instance")->as_string(), "GOOD");
  EXPECT_EQ(first.find("outcome")->as_string(), "converged");
  EXPECT_GE(first.find("wall_ms")->as_number(), 0.0);
  const obs::JsonValue* summary = parsed->find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_DOUBLE_EQ(summary->find("converged_rate")->as_number(), 1.0);
}

}  // namespace
}  // namespace commroute::study
