// Campaign integration of the virtual-time sim: kSim rows sweep the
// sim_points axis, skip inexpressible (Reliable, lossy) combinations,
// stay deterministic across thread counts, and export the virtual-time
// CSV/JSON columns.
#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "spp/gadgets.hpp"
#include "study/campaign.hpp"
#include "support/strings.hpp"

namespace commroute {
namespace {

using model::Model;

study::CampaignSpec sim_spec(const spp::Instance& bad) {
  study::CampaignSpec spec;
  spec.instances.push_back({"BAD-GADGET", &bad});
  spec.models = {Model::parse("R1O"), Model::parse("U1O")};
  spec.schedulers = {study::SchedulerKind::kSim};
  spec.seeds = 2;
  spec.max_steps = 1500;
  sim::LinkModel lossless;
  lossless.latency_us = 500;
  sim::LinkModel lossy;
  lossy.latency_us = 500;
  lossy.loss_prob = 0.2;
  spec.sim_points = {lossless, lossy};
  return spec;
}

TEST(SimCampaign, SweepsPointsAndSkipsLossyReliableCombos) {
  const spp::Instance bad = spp::bad_gadget();
  const study::CampaignSpec spec = sim_spec(bad);
  const study::CampaignResult result = study::run_campaign(spec);
  // R1O runs only the lossless point (2 seeds); U1O runs both points:
  // 2 models x points x 2 seeds - skipped = 2 + 4.
  ASSERT_EQ(result.rows.size(), 6u);
  std::size_t lossy_rows = 0;
  for (const study::CampaignRow& row : result.rows) {
    EXPECT_EQ(row.scheduler, study::SchedulerKind::kSim);
    EXPECT_EQ(row.sim_latency_us, 500u);
    if (row.sim_loss > 0.0) {
      ++lossy_rows;
      EXPECT_FALSE(row.model.reliable());
    }
    if (row.outcome == engine::Outcome::kConverged) {
      EXPECT_GT(row.virtual_us, 0u);
      EXPECT_GE(row.virtual_us, row.last_change_us);
    }
  }
  EXPECT_EQ(lossy_rows, 2u);
}

TEST(SimCampaign, RowsAreDeterministicAcrossThreadCounts) {
  const spp::Instance bad = spp::bad_gadget();
  study::CampaignSpec serial = sim_spec(bad);
  serial.threads = 1;
  study::CampaignSpec parallel = sim_spec(bad);
  parallel.threads = 4;
  const study::CampaignResult a = study::run_campaign(serial);
  const study::CampaignResult b = study::run_campaign(parallel);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].instance, b.rows[i].instance);
    EXPECT_EQ(a.rows[i].model.name(), b.rows[i].model.name());
    EXPECT_EQ(a.rows[i].seed, b.rows[i].seed);
    EXPECT_EQ(a.rows[i].outcome, b.rows[i].outcome);
    EXPECT_EQ(a.rows[i].steps, b.rows[i].steps);
    EXPECT_EQ(a.rows[i].virtual_us, b.rows[i].virtual_us);
    EXPECT_EQ(a.rows[i].last_change_us, b.rows[i].last_change_us);
    EXPECT_EQ(a.rows[i].sim_latency_us, b.rows[i].sim_latency_us);
    EXPECT_EQ(a.rows[i].sim_loss, b.rows[i].sim_loss);
  }
}

TEST(SimCampaign, DistinctPointsGetDecorrelatedSeeds) {
  // Same instance/model/seed at two latency points must not replay the
  // same sampling stream: with jitter on, trajectories should differ.
  const spp::Instance bad = spp::bad_gadget();
  study::CampaignSpec spec;
  spec.instances.push_back({"BAD-GADGET", &bad});
  spec.models = {Model::parse("U1O")};
  spec.schedulers = {study::SchedulerKind::kSim};
  spec.seeds = 1;
  spec.max_steps = 400;
  sim::LinkModel a;
  a.latency_us = 1000;
  a.jitter_us = 900;
  a.dist = sim::LatencyDist::kUniform;
  a.loss_prob = 0.3;
  sim::LinkModel b = a;  // identical link model, second axis position
  spec.sim_points = {a, b};
  const study::CampaignResult result = study::run_campaign(spec);
  ASSERT_EQ(result.rows.size(), 2u);
  // Identical link parameters but different point index: the derived
  // sampling seed differs, so the virtual trajectories differ.
  EXPECT_NE(result.rows[0].virtual_us, result.rows[1].virtual_us);
}

TEST(SimCampaign, CausalityReportsVirtualCriticalPaths) {
  const spp::Instance bad = spp::bad_gadget();
  study::CampaignSpec spec = sim_spec(bad);
  spec.causality = true;
  const study::CampaignResult result = study::run_campaign(spec);
  for (const study::CampaignRow& row : result.rows) {
    EXPECT_GT(row.critical_path_len, 0u);
    if (row.outcome == engine::Outcome::kConverged) {
      // The chain ending at the last route change has virtual length
      // equal to the convergence time: a latency lower bound.
      EXPECT_EQ(row.critical_path_us, row.last_change_us);
    }
  }

  // Byte-identical CSV regardless of worker threads (minus wall_ms,
  // which CI strips by position; here compare the causal columns).
  study::CampaignSpec wide = spec;
  wide.threads = 4;
  const study::CampaignResult parallel = study::run_campaign(wide);
  ASSERT_EQ(parallel.rows.size(), result.rows.size());
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    EXPECT_EQ(parallel.rows[i].critical_path_len,
              result.rows[i].critical_path_len);
    EXPECT_EQ(parallel.rows[i].critical_path_us,
              result.rows[i].critical_path_us);
  }
}

TEST(SimCampaign, CsvAndJsonCarryVirtualColumns) {
  const spp::Instance bad = spp::bad_gadget();
  const study::CampaignResult result = study::run_campaign(sim_spec(bad));
  const std::string csv = result.to_csv();
  EXPECT_NE(csv.find("sim_latency_us,sim_loss,virtual_us,last_change_us"),
            std::string::npos);
  const auto records = csv_parse(csv);
  ASSERT_EQ(records.size(), result.rows.size() + 1);

  const std::optional<obs::JsonValue> parsed =
      obs::json_parse(result.to_json());
  ASSERT_TRUE(parsed.has_value());
  const obs::JsonValue* rows = parsed->find("rows");
  ASSERT_TRUE(rows != nullptr && rows->is_array());
  const obs::JsonValue& first = rows->as_array().front();
  ASSERT_TRUE(first.find("virtual_us") != nullptr);
  EXPECT_EQ(first.find("scheduler")->as_string(), "sim");
  EXPECT_EQ(first.find("sim_latency_us")->as_number(), 500.0);
}

TEST(SimCampaign, MixesWithClassicSchedulers) {
  const spp::Instance good = spp::good_gadget();
  study::CampaignSpec spec;
  spec.instances.push_back({"GOOD-GADGET", &good});
  spec.models = {Model::parse("RMS")};
  spec.schedulers = {study::SchedulerKind::kRoundRobin,
                     study::SchedulerKind::kSim};
  spec.seeds = 1;
  spec.max_steps = 5000;
  const study::CampaignResult result = study::run_campaign(spec);
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0].scheduler, study::SchedulerKind::kRoundRobin);
  EXPECT_EQ(result.rows[0].virtual_us, 0u);  // classic rows: no sim view
  EXPECT_EQ(result.rows[1].scheduler, study::SchedulerKind::kSim);
  EXPECT_EQ(result.rows[1].outcome, engine::Outcome::kConverged);
  EXPECT_GT(result.rows[1].virtual_us, 0u);
}

}  // namespace
}  // namespace commroute
