#include <gtest/gtest.h>

#include "engine/executor.hpp"
#include "engine/runner.hpp"
#include "model/multi.hpp"
#include "spp/gadgets.hpp"
#include "support/error.hpp"

namespace commroute::model {
namespace {

TEST(ExtendedModel, NameParseRoundTrip) {
  for (const char* name : {"R1O", "sync-REA", "multi-RMS", "sync-U1O",
                           "multi-UEA"}) {
    EXPECT_EQ(ExtendedModel::parse(name).name(), name);
  }
}

TEST(ExtendedModel, ParseRejectsGarbage) {
  EXPECT_THROW(ExtendedModel::parse("sync-"), ParseError);
  EXPECT_THROW(ExtendedModel::parse("multi-XYZ"), ParseError);
  EXPECT_THROW(ExtendedModel::parse("both-R1O"), ParseError);
}

TEST(ExtendedModel, NodesModeToString) {
  EXPECT_EQ(to_string(NodesMode::kOne), "one");
  EXPECT_EQ(to_string(NodesMode::kEvery), "every");
  EXPECT_EQ(to_string(NodesMode::kUnrestricted), "unrestricted");
}

class ExtendedStepTest : public ::testing::Test {
 protected:
  spp::Instance inst = spp::disagree();
  NodeId d = inst.graph().node("d");
  NodeId x = inst.graph().node("x");
  NodeId y = inst.graph().node("y");

  ActivationStep two_node_step() {
    return make_multi_step(
        {x, y},
        {ReadSpec{inst.graph().channel(d, x), std::nullopt, {}},
         ReadSpec{inst.graph().channel(d, y), std::nullopt, {}}});
  }

  ActivationStep all_node_step() {
    std::vector<ReadSpec> reads;
    for (const NodeId v : {d, x, y}) {
      for (const ChannelIdx c : inst.graph().in_channels(v)) {
        reads.push_back(ReadSpec{c, std::nullopt, {}});
      }
    }
    return make_multi_step({d, x, y}, std::move(reads));
  }
};

TEST_F(ExtendedStepTest, OneRequiresSingleNode) {
  const ExtendedModel one = ExtendedModel::parse("R1A");
  EXPECT_TRUE(extended_step_allowed(one, inst,
                                    poll_one_step(inst, x, d)));
  std::string why;
  EXPECT_FALSE(extended_step_allowed(one, inst, two_node_step(), &why));
  EXPECT_NE(why.find("exactly one"), std::string::npos);
}

TEST_F(ExtendedStepTest, EveryRequiresAllNodes) {
  const ExtendedModel sync_rea = ExtendedModel::parse("sync-REA");
  EXPECT_TRUE(extended_step_allowed(sync_rea, inst, all_node_step()));
  // A step that satisfies REA per node (x and y poll all their channels)
  // but leaves d out of U fails only the U = V rule.
  std::vector<ReadSpec> reads;
  for (const NodeId v : {x, y}) {
    for (const ChannelIdx c : inst.graph().in_channels(v)) {
      reads.push_back(ReadSpec{c, std::nullopt, {}});
    }
  }
  const ActivationStep xy_polls = make_multi_step({x, y}, std::move(reads));
  std::string why;
  EXPECT_FALSE(extended_step_allowed(sync_rea, inst, xy_polls, &why));
  EXPECT_NE(why.find("every node"), std::string::npos);
}

TEST_F(ExtendedStepTest, UnrestrictedAllowsAnyNonEmptySet) {
  const ExtendedModel multi = ExtendedModel::parse("multi-R1A");
  EXPECT_TRUE(extended_step_allowed(multi, inst, two_node_step()));
  EXPECT_TRUE(
      extended_step_allowed(multi, inst, poll_one_step(inst, x, d)));
}

TEST_F(ExtendedStepTest, BaseModelRulesStillApply) {
  // multi-R1A still requires exactly one channel per node, all messages.
  const ExtendedModel multi = ExtendedModel::parse("multi-R1A");
  ActivationStep step = two_node_step();
  step.reads[0].count = 1u;  // violates A (all)
  std::string why;
  EXPECT_FALSE(extended_step_allowed(multi, inst, step, &why));
}

TEST_F(ExtendedStepTest, RequireThrowsWithModelName) {
  try {
    require_extended_step_allowed(ExtendedModel::parse("sync-REA"), inst,
                                  poll_one_step(inst, x, d));
    FAIL() << "expected throw";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("sync-REA"), std::string::npos);
  }
}

// Ex. A.6 through the synchronous scheduler: aligned per-node channel
// rotation reproduces the "both poll d / both poll each other" cycle.
TEST(Synchronous, DisagreeOscillatesUnderSyncR1A) {
  const spp::Instance inst = spp::disagree();
  engine::SynchronousScheduler sched(Model::parse("R1A"), inst);
  const auto result = engine::run(inst, sched, {.max_steps = 200});
  EXPECT_EQ(result.outcome, engine::Outcome::kOscillating);
}

TEST(Synchronous, StepsAreLegalExtendedSteps) {
  const spp::Instance inst = spp::example_a2();
  for (const char* base : {"R1A", "REA", "REO", "RMS"}) {
    const ExtendedModel m = ExtendedModel::parse(std::string("sync-") + base);
    engine::SynchronousScheduler sched(Model::parse(base), inst);
    engine::NetworkState state(inst);
    for (int i = 0; i < 30; ++i) {
      const auto step = sched.next(state);
      EXPECT_TRUE(extended_step_allowed(m, inst, step)) << base;
      engine::execute_step(state, step);
    }
  }
}

TEST(Synchronous, GoodGadgetConvergesSynchronously) {
  const spp::Instance inst = spp::good_gadget();
  for (const char* base : {"REA", "REO", "RMS"}) {
    engine::SynchronousScheduler sched(Model::parse(base), inst);
    const auto result = engine::run(inst, sched, {.max_steps = 2000});
    EXPECT_EQ(result.outcome, engine::Outcome::kConverged) << base;
  }
}

TEST(Synchronous, PeriodIsLcmOfInDegrees) {
  const spp::Instance inst = spp::example_a2();  // degrees 2..5
  engine::SynchronousScheduler one(Model::parse("R1O"), inst);
  EXPECT_GT(one.period(), 1u);
  engine::SynchronousScheduler every(Model::parse("REA"), inst);
  EXPECT_EQ(every.period(), 1u);
}

// The paper's remark: synchronous DISAGREE under full polling (sync-REA)
// also oscillates — both nodes flip simultaneously forever.
TEST(Synchronous, DisagreeOscillatesEvenUnderSyncREA) {
  const spp::Instance inst = spp::disagree();
  engine::SynchronousScheduler sched(Model::parse("REA"), inst);
  const auto result = engine::run(inst, sched, {.max_steps = 200});
  EXPECT_EQ(result.outcome, engine::Outcome::kOscillating);
}

}  // namespace
}  // namespace commroute::model
