#include <gtest/gtest.h>

#include "realization/closure.hpp"
#include "realization/matrix.hpp"
#include "realization/paper_data.hpp"

namespace commroute::realization {
namespace {

using model::Model;

const RealizationTable& closure_table() {
  static const RealizationTable table = RealizationTable::closure();
  return table;
}

// The central reproduction claim: closing the foundational facts under the
// Fig. 1/2 transitivity rules regenerates the published matrices. Every
// published bound must be re-derived (no "looser" cells) and nothing may
// contradict the paper.
TEST(Closure, ReproducesFigure3WithoutLossOrContradiction) {
  const MatrixComparison cmp =
      compare_with_paper(closure_table(), Figure::kFig3Reliable);
  EXPECT_FALSE(cmp.has_contradiction()) << cmp.summary();
  EXPECT_FALSE(cmp.has_looser()) << cmp.summary();
  // 272 of 276 cells match exactly; 4 are tightened corollaries (see
  // EXPERIMENTS.md).
  EXPECT_EQ(cmp.equal, 272u) << cmp.summary();
}

TEST(Closure, ReproducesFigure4Exactly) {
  const MatrixComparison cmp =
      compare_with_paper(closure_table(), Figure::kFig4Unreliable);
  EXPECT_EQ(cmp.equal, cmp.cells) << cmp.summary();
  EXPECT_TRUE(cmp.diffs.empty());
}

TEST(Closure, TheFourTightenedCellsAreKnown) {
  const MatrixComparison cmp =
      compare_with_paper(closure_table(), Figure::kFig3Reliable);
  ASSERT_EQ(cmp.diffs.size(), 4u);
  std::vector<std::string> cells;
  for (const CellDiff& d : cmp.diffs) {
    EXPECT_EQ(d.kind, "tighter");
    cells.push_back(d.realized.name() + "/" + d.realizer.name());
  }
  std::sort(cells.begin(), cells.end());
  const std::vector<std::string> expected{"U1O/R1O", "U1O/RMO", "UMO/R1O",
                                          "UMO/RMO"};
  EXPECT_EQ(cells, expected);
}

// Spot-check the cells discussed in the paper's text.
TEST(Closure, QueueingModelsAreUniversal) {
  // "RMS is able to realize all reliable channel models exactly and all
  //  unreliable channel models either with repetition or exactly."
  const Model rms = Model::parse("RMS");
  for (const Model& a : Model::all()) {
    const RelationBound& b = closure_table().cell(a, rms);
    if (a.reliable()) {
      EXPECT_EQ(b.lo, Strength::kExact) << a.name();
    } else {
      EXPECT_GE(level(b.lo), level(Strength::kRepetition)) << a.name();
    }
  }
  // "UMS is able to exactly realize all models."
  const Model ums = Model::parse("UMS");
  for (const Model& a : Model::all()) {
    EXPECT_EQ(closure_table().cell(a, ums).lo, Strength::kExact)
        << a.name();
  }
}

TEST(Closure, SevenReliableModelsCaptureAllOscillations) {
  // "among the reliable channel models, R1O, RMO, R1S, RMS, RES, R1F, and
  //  RMF are all able to capture all of the oscillations of all other
  //  models".
  for (const char* name :
       {"R1O", "RMO", "R1S", "RMS", "RES", "R1F", "RMF"}) {
    const Model b = Model::parse(name);
    for (const Model& a : Model::all()) {
      EXPECT_GE(level(closure_table().cell(a, b).lo),
                level(Strength::kSubsequence))
          << b.name() << " should capture " << a.name();
    }
  }
}

TEST(Closure, FiveModelsProvablyMissOscillations) {
  // "REO, REF, R1A, RMA, and REA are provably unable to capture some
  //  oscillations".
  for (const char* name : {"REO", "REF", "R1A", "RMA", "REA"}) {
    const RelationBound& b =
        closure_table().cell(Model::parse("R1O"), Model::parse(name));
    EXPECT_EQ(b.hi, Strength::kNotPreserving) << name;
  }
}

TEST(Closure, Corollary314Instances) {
  // Cor. 3.14: Ryz cannot be realized with repetition in Ry'O (z != O).
  for (const char* a : {"R1S", "RMS", "RES", "R1F", "RMF", "REF", "R1A",
                        "RMA", "REA"}) {
    for (const char* b : {"R1O", "RMO"}) {
      const RelationBound& bound =
          closure_table().cell(Model::parse(a), Model::parse(b));
      EXPECT_LE(level(bound.hi), level(Strength::kSubsequence))
          << a << " in " << b;
    }
  }
}

TEST(Closure, DiagonalIsExact) {
  for (const Model& m : Model::all()) {
    const RelationBound& b = closure_table().cell(m, m);
    EXPECT_EQ(b.lo, Strength::kExact);
    EXPECT_EQ(b.hi, Strength::kExact);
  }
}

TEST(Closure, RulePPropagatesLowerBounds) {
  // REA -> RMA (exact) and RMA -> R1A (repetition) compose to
  // REA -> R1A at repetition (the paper's Fig. 3 lists exactly 3).
  const RelationBound& b =
      closure_table().cell(Model::parse("REA"), Model::parse("R1A"));
  EXPECT_EQ(b.lo, Strength::kRepetition);
  EXPECT_EQ(b.hi, Strength::kRepetition);
}

TEST(Closure, ExplainShowsProvenance) {
  const std::string text = closure_table().explain(Model::parse("REA"),
                                                   Model::parse("R1O"));
  EXPECT_NE(text.find("R1O"), std::string::npos);
  EXPECT_NE(text.find("Prop. 3.11"), std::string::npos);
  const std::string derived = closure_table().explain(
      Model::parse("R1S"), Model::parse("R1O"));
  EXPECT_NE(derived.find("Prop. 3.6"), std::string::npos);
}

TEST(Closure, EmptyFactSetYieldsUnknownTable) {
  const RealizationTable empty = RealizationTable::closure({});
  const RelationBound& b =
      empty.cell(Model::parse("R1O"), Model::parse("RMS"));
  EXPECT_TRUE(b.unknown());
}

TEST(Closure, RenderedMatrixHasAllRowsAndColumns) {
  const std::string fig3 =
      render_matrix(closure_table(), Figure::kFig3Reliable);
  for (const Model& m : Model::all()) {
    EXPECT_NE(fig3.find(m.name()), std::string::npos) << m.name();
  }
  const std::string paper = render_paper_matrix(Figure::kFig4Unreliable);
  EXPECT_NE(paper.find("UEA"), std::string::npos);
}

TEST(Closure, ComparisonSummaryFormat) {
  const MatrixComparison cmp =
      compare_with_paper(closure_table(), Figure::kFig3Reliable);
  EXPECT_NE(cmp.summary().find("cells identical"), std::string::npos);
  EXPECT_EQ(cmp.cells, 276u);
}

}  // namespace
}  // namespace commroute::realization
