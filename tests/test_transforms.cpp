#include <gtest/gtest.h>

#include "engine/executor.hpp"
#include "engine/scheduler.hpp"
#include "realization/transforms.hpp"
#include "spp/gadgets.hpp"
#include "spp/random_gen.hpp"
#include "test_util.hpp"
#include "trace/seq_match.hpp"

namespace commroute::realization {
namespace {

using model::ActivationScript;
using model::Model;

// A transform's claimed Strength maps onto the MatchKind ladder
// (Strength::kSubsequence=2 <-> MatchKind::kSubsequence=1 etc.).
trace::MatchKind required_kind(Strength s) {
  switch (s) {
    case Strength::kExact:
      return trace::MatchKind::kExact;
    case Strength::kRepetition:
      return trace::MatchKind::kRepetition;
    case Strength::kSubsequence:
      return trace::MatchKind::kSubsequence;
    default:
      return trace::MatchKind::kNone;
  }
}

bool satisfies(trace::MatchKind got, trace::MatchKind want) {
  return static_cast<int>(got) >= static_cast<int>(want);
}

ActivationScript random_script(const spp::Instance& inst, const Model& m,
                               Rng rng, int steps) {
  engine::RandomFairScheduler sched(
      m, inst, rng,
      {.drop_prob = m.reliable() ? 0.0 : 0.35, .sweep_period = 16});
  engine::NetworkState state(inst);
  ActivationScript script;
  for (int i = 0; i < steps; ++i) {
    const auto step = sched.next(state);
    engine::execute_step(state, step);
    script.push_back(step);
  }
  return script;
}

void check_case(const TransformCase& c, const spp::Instance& inst,
                const ActivationScript& script) {
  const trace::Recording rec = trace::record_script(inst, script, c.from);
  const ActivationScript out = apply_transform(c, inst, rec);
  for (const auto& step : out) {
    model::require_step_allowed(c.to, inst, step);
  }
  const trace::Recording replay = trace::record_script(inst, out, c.to);
  const trace::MatchKind got =
      trace::strongest_match(rec.trace, replay.trace);
  EXPECT_TRUE(satisfies(got, required_kind(c.claimed)))
      << c.name << " " << c.from.name() << "->" << c.to.name()
      << ": claimed " << to_string(c.claimed) << ", got "
      << trace::to_string(got);
}

TEST(Transforms, RegistryCoversEveryTheoremInstance) {
  const auto cases = all_transform_cases();
  EXPECT_EQ(cases.size(), 59u);
  std::size_t identities = 0, expand = 0;
  for (const auto& c : cases) {
    if (c.rule == TransformRule::kIdentity) {
      ++identities;
    }
    if (c.rule == TransformRule::kExpandMulti) {
      ++expand;
    }
  }
  EXPECT_EQ(identities, 46u);  // P3.3: 12 + 6 + 12 + 16
  EXPECT_EQ(expand, 8u);       // Thm 3.5: 2 reliabilities x 4 modes
}

// Parameterized sweep: every transform case on gadgets and random
// instances with randomized fair executions.
class TransformCaseTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TransformCaseTest, HoldsOnDisagree) {
  const TransformCase c = all_transform_cases()[GetParam()];
  const spp::Instance inst = spp::disagree();
  check_case(c, inst, random_script(inst, c.from, Rng(GetParam()), 60));
}

TEST_P(TransformCaseTest, HoldsOnExampleA2) {
  const TransformCase c = all_transform_cases()[GetParam()];
  const spp::Instance inst = spp::example_a2();
  check_case(c, inst,
             random_script(inst, c.from, Rng(1000 + GetParam()), 80));
}

TEST_P(TransformCaseTest, HoldsOnRandomInstances) {
  const TransformCase c = all_transform_cases()[GetParam()];
  Rng rng(5000 + GetParam());
  for (int trial = 0; trial < 3; ++trial) {
    const spp::Instance inst = spp::random_policy(rng, {.nodes = 5});
    check_case(c, inst, random_script(inst, c.from, rng.split(), 50));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, TransformCaseTest,
    ::testing::Range<std::size_t>(0, all_transform_cases().size()),
    [](const auto& suite_info) {
      const TransformCase c = all_transform_cases()[suite_info.param];
      std::string name = c.from.name() + "_to_" + c.to.name() + "_" +
                         std::to_string(suite_info.param);
      return name;
    });

// The Thm. 3.7 construction must be *exact*, not merely stutter-exact.
TEST(Transforms, AccumulateSkipsIsStrictlyExact) {
  const spp::Instance inst = spp::disagree();
  TransformCase t37;
  for (const auto& c : all_transform_cases()) {
    if (c.rule == TransformRule::kAccumulateSkips) {
      t37 = c;
    }
  }
  for (int trial = 0; trial < 10; ++trial) {
    const auto script =
        random_script(inst, t37.from, Rng(200 + trial), 80);
    const trace::Recording rec =
        trace::record_script(inst, script, t37.from);
    const auto out = apply_transform(t37, inst, rec);
    const trace::Recording replay =
        trace::record_script(inst, out, t37.to);
    EXPECT_TRUE(trace::matches_exactly(rec.trace, replay.trace))
        << "trial " << trial;
  }
}

// The Prop. 3.6 flag construction preserves the destination's initial
// announcement even when the R1S script first activates d with f = 0.
TEST(Transforms, FlagBatchesSurvivesEmptyFirstDestinationRead) {
  const spp::Instance inst = spp::disagree();
  const NodeId d = inst.graph().node("d");
  const NodeId x = inst.graph().node("x");
  ActivationScript script;
  script.push_back(model::make_step(
      d, {model::ReadSpec{inst.graph().channel(x, d), 0u, {}}}));
  script.push_back(model::read_one_step(inst, x, d));
  TransformCase flag;
  for (const auto& c : all_transform_cases()) {
    if (c.rule == TransformRule::kFlagBatches) {
      flag = c;
    }
  }
  const trace::Recording rec =
      trace::record_script(inst, script, flag.from);
  const auto out = apply_transform(flag, inst, rec);
  const trace::Recording replay = trace::record_script(inst, out, flag.to);
  EXPECT_EQ(replay.final_state.assignment(x), inst.parse_path("xd"));
  EXPECT_TRUE(trace::matches_as_subsequence(rec.trace, replay.trace));
}

// Identity embeddings return the script verbatim.
TEST(Transforms, IdentityReturnsSameScript) {
  const spp::Instance inst = spp::disagree();
  TransformCase ident;
  for (const auto& c : all_transform_cases()) {
    if (c.rule == TransformRule::kIdentity &&
        c.from == Model::parse("R1O")) {
      ident = c;
      break;
    }
  }
  const auto script = random_script(inst, ident.from, Rng(3), 20);
  const trace::Recording rec =
      trace::record_script(inst, script, ident.from);
  const auto out = apply_transform(ident, inst, rec);
  ASSERT_EQ(out.size(), script.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].to_string(inst), script[i].to_string(inst));
  }
}

}  // namespace
}  // namespace commroute::realization
