#include <gtest/gtest.h>

#include <limits>

#include "support/error.hpp"
#include "bgp/compile.hpp"
#include "bgp/policy.hpp"
#include "bgp/random_topology.hpp"
#include "bgp/topology.hpp"
#include "engine/executor.hpp"
#include "engine/runner.hpp"
#include "spp/dispute_wheel.hpp"
#include "spp/serialize.hpp"
#include "spp/solver.hpp"

namespace commroute::bgp {
namespace {

using model::Model;

/// A small reference topology:
///       as0 (tier-1) --- peers --- as1 (tier-1)
///        |                           |
///       as2 (provider: as0)         as3 (provider: as1)
///        \---- peers: as2 -- as3 ---/
///       as4 (customer of as2 and as3)
std::shared_ptr<AsTopology> reference_topology() {
  auto topo = std::make_shared<AsTopology>();
  topo->add_peering("as0", "as1");
  topo->add_customer_provider("as2", "as0");
  topo->add_customer_provider("as3", "as1");
  topo->add_peering("as2", "as3");
  topo->add_customer_provider("as4", "as2");
  topo->add_customer_provider("as4", "as3");
  return topo;
}

TEST(Topology, RelationshipsAreSymmetricallyLabeled) {
  const auto topo = reference_topology();
  const NodeId as2 = topo->as("as2");
  const NodeId as0 = topo->as("as0");
  EXPECT_EQ(topo->relationship(as2, as0), Relationship::kProvider);
  EXPECT_EQ(topo->relationship(as0, as2), Relationship::kCustomer);
  const NodeId as1 = topo->as("as1");
  EXPECT_EQ(topo->relationship(as0, as1), Relationship::kPeer);
  EXPECT_EQ(topo->relationship(as1, as0), Relationship::kPeer);
  EXPECT_FALSE(topo->relationship(as0, topo->as("as4")).has_value());
}

TEST(Topology, RejectsDuplicatesAndSelfLinks) {
  AsTopology topo;
  topo.add_customer_provider("a", "b");
  EXPECT_THROW(topo.add_peering("a", "b"), PreconditionError);
  EXPECT_THROW(topo.add_peering("a", "a"), PreconditionError);
}

TEST(Topology, ProviderAcyclicityDetection) {
  const auto good = reference_topology();
  EXPECT_TRUE(good->provider_dag_acyclic());

  AsTopology cyclic;
  cyclic.add_customer_provider("a", "b");
  cyclic.add_customer_provider("b", "c");
  cyclic.add_customer_provider("c", "a");
  EXPECT_FALSE(cyclic.provider_dag_acyclic());
}

TEST(Topology, ReverseRelationship) {
  EXPECT_EQ(reverse(Relationship::kCustomer), Relationship::kProvider);
  EXPECT_EQ(reverse(Relationship::kProvider), Relationship::kCustomer);
  EXPECT_EQ(reverse(Relationship::kPeer), Relationship::kPeer);
}

TEST(Policy, ClassificationFollowsGR2) {
  const auto topo = reference_topology();
  const NodeId as2 = topo->as("as2");
  EXPECT_EQ(classify(*topo, as2, topo->as("as4")),
            RouteClass::kCustomerRoute);
  EXPECT_EQ(classify(*topo, as2, topo->as("as3")), RouteClass::kPeerRoute);
  EXPECT_EQ(classify(*topo, as2, topo->as("as0")),
            RouteClass::kProviderRoute);
}

TEST(Policy, ExportRuleGR3) {
  const auto topo = reference_topology();
  const NodeId as2 = topo->as("as2");
  const NodeId as0 = topo->as("as0");
  const NodeId as3 = topo->as("as3");
  const NodeId as4 = topo->as("as4");
  // Customer-learned routes go everywhere.
  EXPECT_TRUE(gao_rexford_export(*topo, as2, as0, as4));
  EXPECT_TRUE(gao_rexford_export(*topo, as2, as3, as4));
  // Peer-learned routes go only to customers.
  EXPECT_TRUE(gao_rexford_export(*topo, as2, as4, as3));
  EXPECT_FALSE(gao_rexford_export(*topo, as2, as0, as3));
  // Provider-learned routes go only to customers.
  EXPECT_TRUE(gao_rexford_export(*topo, as2, as4, as0));
  EXPECT_FALSE(gao_rexford_export(*topo, as2, as3, as0));
  // Originated routes go everywhere.
  EXPECT_TRUE(gao_rexford_export(*topo, as2, as0, as2));
}

TEST(Policy, ValleyFreePathAcceptance) {
  const auto topo = reference_topology();
  const auto path = [&](const std::vector<const char*>& names) {
    std::vector<NodeId> nodes;
    for (const char* n : names) {
      nodes.push_back(topo->as(n));
    }
    return Path(std::move(nodes));
  };
  // Customer chain up is fine.
  EXPECT_TRUE(gao_rexford_permits(*topo, path({"as4", "as2", "as0"})));
  // Valley: as0 -> as2 (customer) -> as3 (peer) is a peer hop after a
  // customer hop as seen by as2: as2 exports a peer-learned route to its
  // provider as0 — forbidden.
  EXPECT_FALSE(
      gao_rexford_permits(*topo, path({"as0", "as2", "as3"})));
  // Down-then-along-peering toward a customer is fine.
  EXPECT_TRUE(gao_rexford_permits(*topo, path({"as4", "as2", "as3"})));
  // Two peering hops in a row are forbidden (as2 would export a
  // peer-learned route to a peer).
  EXPECT_FALSE(
      gao_rexford_permits(*topo, path({"as3", "as2", "as0", "as1"})));
}

TEST(Policy, ValleyViolationsAreRejectedHopByHop) {
  const auto topo = reference_topology();
  const auto path = [&](std::initializer_list<const char*> names) {
    std::vector<NodeId> nodes;
    for (const char* n : names) {
      nodes.push_back(topo->as(n));
    }
    return Path(std::move(nodes));
  };
  // Up through a provider chain: valley-free.
  EXPECT_TRUE(gao_rexford_permits(*topo, path({"as4", "as2", "as0"})));
  // Down to a customer then back up to a provider: a valley. as2 would
  // have to export a provider-learned route (from as0... actually as4's
  // route) upward — GR3 forbids it.
  EXPECT_FALSE(gao_rexford_permits(*topo, path({"as3", "as4", "as2", "as0"})));
  // Peer then peer: as2 may not re-export a peer-learned route to
  // another peer (as0 -> as2 is provider-to-customer, fine; but
  // as3 -> as2 -> as0? as2 learned from peer as3 and exports to
  // provider as0 — forbidden).
  EXPECT_FALSE(gao_rexford_permits(*topo, path({"as0", "as2", "as3"})));
  // Provider down to customer all the way: always exportable.
  EXPECT_TRUE(gao_rexford_permits(*topo, path({"as0", "as2", "as4"})));
}

TEST(Policy, PreferenceTieBreakOrdering) {
  const auto topo = reference_topology();
  const auto path = [&](std::initializer_list<const char*> names) {
    std::vector<NodeId> nodes;
    for (const char* n : names) {
      nodes.push_back(topo->as(n));
    }
    return Path(std::move(nodes));
  };
  // Route class dominates length: a longer customer route beats a
  // shorter peer route at as2 (customer as4 vs peer as3).
  const RoutePreference customer =
      preference_of(*topo, path({"as2", "as4", "as3"}));
  const RoutePreference peer = preference_of(*topo, path({"as2", "as3"}));
  EXPECT_EQ(customer.route_class, RouteClass::kCustomerRoute);
  EXPECT_EQ(peer.route_class, RouteClass::kPeerRoute);
  EXPECT_TRUE(customer < peer);
  // Same class: shorter wins.
  const RoutePreference direct = preference_of(*topo, path({"as4", "as2"}));
  const RoutePreference longer =
      preference_of(*topo, path({"as4", "as2", "as0"}));
  EXPECT_TRUE(direct < longer);
  // Same class and length: the next-hop index breaks the tie strictly.
  const RoutePreference via2 = preference_of(*topo, path({"as4", "as2"}));
  const RoutePreference via3 = preference_of(*topo, path({"as4", "as3"}));
  EXPECT_TRUE(via2 < via3 || via3 < via2);
}

TEST(Policy, CompiledInstanceRoundTripsThroughSerialize) {
  // The text format carries graph/destination/permitted but not the
  // export policy, so the round trip is compared on those three only.
  const auto topo = reference_topology();
  const spp::Instance inst = compile_gao_rexford(topo, "as0");
  const spp::Instance back = spp::parse_instance(spp::format_instance(inst));
  EXPECT_EQ(back.destination(), inst.destination());
  ASSERT_EQ(back.node_count(), inst.node_count());
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    EXPECT_EQ(back.graph().name(v), inst.graph().name(v));
    EXPECT_EQ(back.permitted(v), inst.permitted(v)) << inst.graph().name(v);
  }
  // Formatting the parsed instance again is a fixed point.
  EXPECT_EQ(spp::format_instance(back), spp::format_instance(inst));
}

TEST(Compile, InstanceMirrorsTopology) {
  const auto topo = reference_topology();
  const spp::Instance inst = compile_gao_rexford(topo, "as0");
  EXPECT_EQ(inst.node_count(), topo->as_count());
  EXPECT_EQ(inst.graph().edge_count(), topo->links().size());
  EXPECT_EQ(inst.destination(), topo->as("as0"));
}

TEST(Compile, PermittedPathsAreValleyFreeAndRankedByGR2) {
  const auto topo = reference_topology();
  const spp::Instance inst = compile_gao_rexford(topo, "as0");
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    if (v == inst.destination()) {
      continue;
    }
    const auto& paths = inst.permitted(v);
    for (const Path& p : paths) {
      EXPECT_TRUE(gao_rexford_permits(*topo, p)) << inst.path_name(p);
    }
    for (std::size_t i = 1; i < paths.size(); ++i) {
      EXPECT_TRUE(preference_of(*topo, paths[i - 1]) <
                  preference_of(*topo, paths[i]));
    }
  }
  // as4 prefers its customer-free ... provider routes by class then
  // length: as4>as2>as0 (provider, len 3) over as4>as2>as3>... etc.
  const NodeId as4 = topo->as("as4");
  ASSERT_FALSE(inst.permitted(as4).empty());
  EXPECT_EQ(inst.permitted(as4)[0].size(), 3u);
}

TEST(Compile, RejectsProviderCycles) {
  auto cyclic = std::make_shared<AsTopology>();
  cyclic->add_customer_provider("a", "b");
  cyclic->add_customer_provider("b", "c");
  cyclic->add_customer_provider("c", "a");
  EXPECT_THROW(compile_gao_rexford(cyclic, "a"), PreconditionError);
}

TEST(Compile, GaoRexfordInstancesAreDisputeWheelFree) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const auto topo = random_as_topology(rng, {.as_count = 7});
    const spp::Instance inst = compile_gao_rexford(topo, "as0");
    EXPECT_TRUE(spp::is_dispute_wheel_free(inst));
    EXPECT_EQ(spp::stable_assignments(inst, 2).size(), 1u);
  }
}

TEST(Compile, ExportPolicyFiltersAnnouncements) {
  const auto topo = reference_topology();
  const spp::Instance inst = compile_gao_rexford(topo, "as0");
  const NodeId as2 = topo->as("as2");
  const NodeId as3 = topo->as("as3");
  const NodeId as4 = topo->as("as4");
  // as2's peer route via as3 must not be exported to its provider as0 or
  // to its peer as3, but may go to customer as4.
  const Path peer_route =
      Path{as2, as3, topo->as("as1"), topo->as("as0")};
  EXPECT_TRUE(inst.export_allows(as2, as4, peer_route));
  EXPECT_FALSE(inst.export_allows(as2, topo->as("as0"), peer_route));
}

TEST(Compile, ConvergesInEveryCommunicationModel) {
  const auto topo = reference_topology();
  const spp::Instance inst = compile_gao_rexford(topo, "as0");
  for (const Model& m : Model::all()) {
    engine::RoundRobinScheduler sched(m, inst);
    const engine::RunResult result =
        engine::run(inst, sched, {.enforce_model = m});
    EXPECT_EQ(result.outcome, engine::Outcome::kConverged) << m.name();
    EXPECT_TRUE(spp::is_solution(inst, result.final_assignment))
        << m.name();
  }
}

TEST(Compile, WireLevelExportFiltering) {
  // GR3 enforced by the engine itself: over a full convergence run, every
  // route announced on a channel must have been exportable by its sender,
  // and peers/providers never see peer- or provider-learned routes.
  const auto topo = reference_topology();
  const spp::Instance inst = compile_gao_rexford(topo, "as0");
  engine::RoundRobinScheduler sched(Model::parse("RMS"), inst);
  engine::NetworkState state(inst);
  for (int i = 0; i < 500 && !engine::strongly_quiescent(state); ++i) {
    const auto step = sched.next(state);
    const auto effect = engine::execute_step(state, step);
    for (const auto& sent : effect.sent) {
      const Path& route = sent.message.path;
      if (route.empty()) {
        continue;  // withdrawals always propagate
      }
      const ChannelId id = inst.graph().channel_id(sent.channel);
      const NodeId learned_from =
          route.size() >= 2 ? route.next_hop() : id.from;
      EXPECT_TRUE(gao_rexford_export(*topo, id.from, id.to, learned_from))
          << inst.graph().channel_name(sent.channel) << " carried "
          << inst.path_name(route);
    }
  }
  EXPECT_TRUE(engine::strongly_quiescent(state));
}

TEST(Compile, AllDestinationsAreIndependentAndSafe) {
  Rng rng(21);
  const auto topo = random_as_topology(rng, {.as_count = 6});
  const auto instances = compile_all_destinations(topo);
  ASSERT_EQ(instances.size(), topo->as_count());
  for (NodeId d = 0; d < topo->as_count(); ++d) {
    EXPECT_EQ(instances[d].destination(), d);
    EXPECT_TRUE(spp::is_dispute_wheel_free(instances[d]))
        << topo->name(d);
    engine::RoundRobinScheduler sched(Model::parse("RMS"), instances[d]);
    const auto run = engine::run(instances[d], sched,
                                 {.record_trace = false});
    EXPECT_EQ(run.outcome, engine::Outcome::kConverged) << topo->name(d);
  }
}

TEST(RandomTopology, SatisfiesGR1ByConstruction) {
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    const auto topo = random_as_topology(rng, {.as_count = 10});
    EXPECT_TRUE(topo->provider_dag_acyclic());
    EXPECT_EQ(topo->as_count(), 10u);
  }
}

TEST(RandomTopology, EveryAsHasATransitPath) {
  Rng rng(14);
  const auto topo = random_as_topology(rng, {.as_count = 8});
  const spp::Instance inst = compile_gao_rexford(topo, "as0");
  for (NodeId v = 1; v < inst.node_count(); ++v) {
    EXPECT_FALSE(inst.permitted(v).empty()) << topo->name(v);
  }
}

TEST(RandomTopology, RejectsDegenerateParameters) {
  Rng rng(16);
  // A hierarchy needs a provider and a customer.
  EXPECT_THROW(random_as_topology(rng, {.as_count = 0}), PreconditionError);
  EXPECT_THROW(random_as_topology(rng, {.as_count = 1}), PreconditionError);
  // Probabilities must be finite and in [0, 1].
  EXPECT_THROW(
      random_as_topology(rng, {.as_count = 4, .extra_provider_prob = -0.1}),
      PreconditionError);
  EXPECT_THROW(
      random_as_topology(rng, {.as_count = 4, .peering_prob = 1.5}),
      PreconditionError);
  EXPECT_THROW(random_as_topology(
                   rng, {.as_count = 4,
                         .extra_provider_prob =
                             std::numeric_limits<double>::quiet_NaN()}),
               PreconditionError);
  EXPECT_THROW(random_as_topology(
                   rng, {.as_count = 4,
                         .peering_prob =
                             std::numeric_limits<double>::infinity()}),
               PreconditionError);
}

TEST(RandomTopology, BoundaryProbabilitiesAreAccepted) {
  Rng rng(17);
  // 0 and 1 are valid: a pure tree and a fully multihomed/peered mesh.
  const auto sparse = random_as_topology(
      rng, {.as_count = 6, .extra_provider_prob = 0.0, .peering_prob = 0.0});
  EXPECT_TRUE(sparse->provider_dag_acyclic());
  const auto dense = random_as_topology(
      rng, {.as_count = 6, .extra_provider_prob = 1.0, .peering_prob = 1.0});
  EXPECT_TRUE(dense->provider_dag_acyclic());
  // The dense draw actually multihomed someone: more provider links
  // than the spanning minimum of as_count - 1.
  std::size_t provider_links = 0;
  for (NodeId a = 0; a < dense->as_count(); ++a) {
    for (NodeId b = 0; b < dense->as_count(); ++b) {
      if (a != b && dense->relationship(a, b) == Relationship::kProvider) {
        ++provider_links;
      }
    }
  }
  EXPECT_GT(provider_links, dense->as_count() - 1);
}

TEST(RandomTopology, ConvergesUnderRandomFairSchedulesAllModels) {
  Rng rng(15);
  const auto topo = random_as_topology(rng, {.as_count = 6});
  const spp::Instance inst = compile_gao_rexford(topo, "as0");
  for (const Model& m : Model::all()) {
    engine::RandomFairScheduler sched(m, inst, Rng(m.index() + 99),
                                      {.drop_prob = 0.25,
                                       .sweep_period = 8});
    const engine::RunResult result =
        engine::run(inst, sched, {.max_steps = 20000, .enforce_model = m});
    EXPECT_EQ(result.outcome, engine::Outcome::kConverged) << m.name();
  }
}

TEST(Relationship, ToStringNames) {
  EXPECT_EQ(to_string(Relationship::kCustomer), "customer");
  EXPECT_EQ(to_string(Relationship::kProvider), "provider");
  EXPECT_EQ(to_string(Relationship::kPeer), "peer");
}

}  // namespace
}  // namespace commroute::bgp
