// Event-sink semantics (one valid JSON object per line, round-trip
// through the parser, no-op when detached) plus the instrumentation
// integration points: engine run summaries, checker heartbeats and cap
// reporting, and campaign row events / JSON export.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "checker/explorer.hpp"
#include "engine/runner.hpp"
#include "obs/obs.hpp"
#include "spp/gadgets.hpp"
#include "study/campaign.hpp"

namespace commroute {
namespace {

using model::Model;

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  return lines;
}

obs::JsonValue parse_or_die(const std::string& line) {
  const auto parsed = obs::json_parse(line);
  EXPECT_TRUE(parsed.has_value()) << "invalid JSON: " << line;
  return parsed.value_or(obs::JsonValue{});
}

TEST(Event, SerializesOneJsonObjectWithTypeFirst) {
  obs::Event e("unit");
  e.field("text", std::string_view("a\"b\nc"))
      .field("n", std::uint64_t{7})
      .field("ratio", 1.5)
      .field("flag", true);
  const std::string json = e.to_json();
  EXPECT_EQ(json.find('\n'), std::string::npos);
  const auto v = parse_or_die(json);
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.as_object().front().first, "type");
  EXPECT_EQ(v.find("type")->as_string(), "unit");
  EXPECT_EQ(v.find("text")->as_string(), "a\"b\nc");
  EXPECT_DOUBLE_EQ(v.find("n")->as_number(), 7.0);
  EXPECT_DOUBLE_EQ(v.find("ratio")->as_number(), 1.5);
  EXPECT_TRUE(v.find("flag")->as_bool());
}

TEST(StreamSink, EmitsOneValidJsonObjectPerLine) {
  std::ostringstream out;
  obs::StreamSink sink(out);
  for (int i = 0; i < 3; ++i) {
    obs::Event e("tick");
    e.field("i", static_cast<std::uint64_t>(i));
    sink.emit(e);
  }
  const auto lines = split_lines(out.str());
  ASSERT_EQ(lines.size(), 3u);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto v = parse_or_die(lines[i]);
    EXPECT_DOUBLE_EQ(v.find("i")->as_number(), static_cast<double>(i));
  }
}

TEST(MemorySink, CollectsAndClears) {
  obs::MemorySink sink;
  sink.emit(obs::Event("a"));
  sink.emit(obs::Event("b"));
  ASSERT_EQ(sink.lines().size(), 2u);
  EXPECT_EQ(parse_or_die(sink.lines()[1]).find("type")->as_string(), "b");
  sink.clear();
  EXPECT_TRUE(sink.lines().empty());
}

TEST(FileSink, WritesParseableJsonl) {
  const std::string path = "test_obs_events_sink.jsonl";
  {
    obs::FileSink sink(path);
    obs::Event e("file");
    e.field("k", std::uint64_t{1});
    sink.emit(e);
    sink.emit(obs::Event("second"));
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  in.close();
  std::remove(path.c_str());
  // Durable sinks self-describe: the first record is the metadata header.
  ASSERT_EQ(lines.size(), 3u);
  const auto meta = parse_or_die(lines[0]);
  EXPECT_EQ(meta.find("type")->as_string(), "meta");
  ASSERT_NE(meta.find("schema_version"), nullptr);
  EXPECT_GE(meta.find("schema_version")->as_number(), 1.0);
  ASSERT_NE(meta.find("created_unix_ms"), nullptr);
  ASSERT_NE(meta.find("git"), nullptr);
  EXPECT_EQ(parse_or_die(lines[1]).find("type")->as_string(), "file");
  EXPECT_EQ(parse_or_die(lines[2]).find("type")->as_string(), "second");
}

TEST(Instrumentation, DetachedIsANoop) {
  obs::Instrumentation inst;
  EXPECT_FALSE(inst.attached());
  inst.emit(obs::Event("dropped"));  // must not crash
  EXPECT_EQ(inst.counter("x"), nullptr);
  EXPECT_EQ(inst.gauge("y"), nullptr);
}

TEST(EngineRun, EmitsSummaryEventAndPublishesMetrics) {
  const spp::Instance good = spp::good_gadget();
  const Model m = Model::parse("RMS");
  engine::RoundRobinScheduler sched(m, good);
  obs::Registry registry;
  obs::MemorySink sink;
  engine::RunOptions options;
  options.record_trace = false;
  options.obs.metrics = &registry;
  options.obs.sink = &sink;
  const auto result = engine::run(good, sched, options);
  EXPECT_EQ(result.outcome, engine::Outcome::kConverged);

  ASSERT_EQ(sink.lines().size(), 1u);
  const auto summary = parse_or_die(sink.lines().back());
  EXPECT_EQ(summary.find("type")->as_string(), "engine_run");
  EXPECT_EQ(summary.find("outcome")->as_string(), "converged");
  EXPECT_DOUBLE_EQ(summary.find("steps")->as_number(),
                   static_cast<double>(result.steps));

  EXPECT_EQ(registry.counter("engine.runs").value(), 1u);
  EXPECT_EQ(registry.counter("engine.steps").value(), result.steps);
  EXPECT_EQ(registry.counter("engine.messages_sent").value(),
            result.messages_sent);
}

TEST(EngineRun, StepEventsAreOptIn) {
  const spp::Instance good = spp::good_gadget();
  const Model m = Model::parse("REA");
  engine::RoundRobinScheduler sched(m, good);
  obs::MemorySink sink;
  engine::RunOptions options;
  options.record_trace = false;
  options.obs.sink = &sink;
  options.emit_step_events = true;
  const auto result = engine::run(good, sched, options);
  std::size_t step_events = 0;
  for (const std::string& line : sink.lines()) {
    if (parse_or_die(line).find("type")->as_string() == "engine_step") {
      ++step_events;
    }
  }
  EXPECT_EQ(step_events, result.steps);
  EXPECT_EQ(sink.lines().size(), result.steps + 1);  // + engine_run
}

TEST(CheckerExplore, EmitsHeartbeatsAndAFinalSummary) {
  const spp::Instance dis = spp::disagree();
  obs::MemorySink sink;
  obs::Registry registry;
  checker::ExploreOptions options;
  options.max_channel_length = 3;
  options.heartbeat_every = 10;
  options.obs.sink = &sink;
  options.obs.metrics = &registry;
  const auto result = checker::explore(dis, Model::parse("RMS"), options);

  std::size_t heartbeats = 0;
  for (const std::string& line : sink.lines()) {
    const auto v = parse_or_die(line);
    if (v.find("type")->as_string() == "checker_heartbeat") {
      ++heartbeats;
      EXPECT_GE(v.find("states")->as_number(), 1.0);
    }
  }
  EXPECT_GE(heartbeats, 1u);

  const auto summary = parse_or_die(sink.lines().back());
  EXPECT_EQ(summary.find("type")->as_string(), "checker_summary");
  EXPECT_DOUBLE_EQ(summary.find("states")->as_number(),
                   static_cast<double>(result.states));
  EXPECT_EQ(summary.find("exhaustive")->as_bool(), result.exhaustive);
  EXPECT_EQ(registry.counter("checker.states").value(), result.states);
  EXPECT_GE(result.frontier_peak, 1u);
  EXPECT_GE(result.scc_prune_passes, 1u);
}

TEST(CheckerExplore, StateCapIsReportedInStructAndEvent) {
  const spp::Instance dis = spp::disagree();
  obs::MemorySink sink;
  checker::ExploreOptions options;
  options.max_channel_length = 3;
  options.max_states = 5;
  options.obs.sink = &sink;
  const auto result = checker::explore(dis, Model::parse("RMS"), options);
  EXPECT_TRUE(result.state_cap_hit);
  EXPECT_FALSE(result.exhaustive);
  EXPECT_EQ(result.state_cap_limit, 5u);
  const auto summary = parse_or_die(sink.lines().back());
  EXPECT_TRUE(summary.find("state_cap_hit")->as_bool());
  EXPECT_DOUBLE_EQ(summary.find("state_cap_limit")->as_number(), 5.0);
}

TEST(CheckerExplore, ChannelBoundIsReportedInStructAndEvent) {
  const spp::Instance dis = spp::disagree();
  obs::MemorySink sink;
  checker::ExploreOptions options;
  options.max_channel_length = 0;  // any send exceeds the bound
  options.obs.sink = &sink;
  const auto result = checker::explore(dis, Model::parse("RMS"), options);
  EXPECT_TRUE(result.channel_bound_hit);
  EXPECT_FALSE(result.exhaustive);
  EXPECT_EQ(result.channel_length_limit, 0u);
  EXPECT_GE(result.bound_skipped_expansions, 1u);
  const auto summary = parse_or_die(sink.lines().back());
  EXPECT_TRUE(summary.find("channel_bound_hit")->as_bool());
  EXPECT_GE(summary.find("bound_skipped_expansions")->as_number(), 1.0);
}

TEST(Campaign, EmitsRowEventsAndExportsJson) {
  const spp::Instance good = spp::good_gadget();
  obs::MemorySink sink;
  study::CampaignSpec spec;
  spec.instances = {{"GOOD", &good}};
  spec.models = {Model::parse("RMS")};
  spec.schedulers = {study::SchedulerKind::kRoundRobin,
                     study::SchedulerKind::kSynchronous};
  spec.obs.sink = &sink;
  const auto result = study::run_campaign(spec);

  std::size_t row_events = 0, summaries = 0;
  for (const std::string& line : sink.lines()) {
    const auto v = parse_or_die(line);
    const std::string& type = v.find("type")->as_string();
    if (type == "campaign_row") {
      ++row_events;
      ASSERT_NE(v.find("row"), nullptr);
      EXPECT_EQ(v.find("row")->find("instance")->as_string(), "GOOD");
      EXPECT_GE(v.find("row")->find("wall_ms")->as_number(), 0.0);
    } else if (type == "campaign_summary") {
      ++summaries;
    }
  }
  EXPECT_EQ(row_events, result.rows.size());
  EXPECT_EQ(summaries, 1u);

  const auto exported = parse_or_die(result.to_json());
  ASSERT_NE(exported.find("rows"), nullptr);
  EXPECT_EQ(exported.find("rows")->as_array().size(), result.rows.size());
  ASSERT_NE(exported.find("summary"), nullptr);
  EXPECT_DOUBLE_EQ(exported.find("summary")->find("rows")->as_number(),
                   static_cast<double>(result.rows.size()));
}

TEST(StreamSink, BatchedModeFlushesEveryNAndOnDestruct) {
  std::ostringstream out;
  {
    obs::StreamSink sink(out, /*flush_every=*/3);
    sink.emit(obs::Event("a"));
    sink.emit(obs::Event("b"));
    sink.emit(obs::Event("c"));  // batch boundary: explicit flush
    sink.emit(obs::Event("d"));  // pending until destruct
  }
  const auto lines = split_lines(out.str());
  ASSERT_EQ(lines.size(), 4u);
  for (const auto& line : lines) {
    EXPECT_TRUE(obs::json_parse(line).has_value()) << line;
  }
}

TEST(FileSink, BatchedFlushLosesNothingOnOrderlyShutdown) {
  const std::string path = ::testing::TempDir() + "/batched_sink.jsonl";
  {
    obs::FileSink sink(path, /*flush_every=*/1000);
    for (int i = 0; i < 10; ++i) {
      sink.emit(obs::Event("tick"));
    }
  }  // well under the batch size: the destructor flush must cover it
  std::ifstream in(path);
  std::string line;
  std::size_t count = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(obs::json_parse(line).has_value()) << line;
    ++count;
  }
  EXPECT_EQ(count, 11u);  // meta header + 10 ticks
  std::remove(path.c_str());
}

TEST(SynchronizedSink, ForwardsToTheWrappedSink) {
  obs::MemorySink inner;
  obs::SynchronizedSink sync(inner);
  sync.emit(obs::Event("one"));
  sync.emit(obs::Event("two"));
  ASSERT_EQ(inner.lines().size(), 2u);
  EXPECT_NE(inner.lines()[0].find("\"one\""), std::string::npos);
}

TEST(SynchronizedSink, ConcurrentEmittersProduceWholeLines) {
  std::ostringstream out;
  {
    obs::StreamSink stream(out, /*flush_every=*/16);
    obs::SynchronizedSink sync(stream);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&sync, t] {
        for (int i = 0; i < 50; ++i) {
          obs::Event ev("worker_event");
          ev.field("worker", static_cast<std::uint64_t>(t))
              .field("i", static_cast<std::uint64_t>(i));
          sync.emit(ev);
        }
      });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
  }
  const auto lines = split_lines(out.str());
  ASSERT_EQ(lines.size(), 200u);
  for (const auto& line : lines) {
    EXPECT_TRUE(obs::json_parse(line).has_value()) << line;
  }
}

}  // namespace
}  // namespace commroute
