// Cross-registry consistency sweep: for every registered gadget and a
// spectrum of models, the checker's findings must cohere with the static
// analyses (solver and dispute-wheel detector).
#include <gtest/gtest.h>

#include "checker/explorer.hpp"
#include "spp/dispute_wheel.hpp"
#include "spp/gadgets.hpp"
#include "spp/solver.hpp"

namespace commroute {
namespace {

using model::Model;

struct SweepCase {
  std::string gadget;
  std::string model;
};

class RegistrySweepTest
    : public ::testing::TestWithParam<std::tuple<int, std::string>> {
 protected:
  static const spp::Instance& gadget(int index) {
    static const auto all = spp::all_gadgets();
    return all[static_cast<std::size_t>(index)].instance;
  }
  static std::string gadget_name(int index) {
    static const auto all = spp::all_gadgets();
    return all[static_cast<std::size_t>(index)].name;
  }
};

TEST_P(RegistrySweepTest, CheckerCoheresWithStaticAnalysis) {
  const auto& [index, model_name] = GetParam();
  const spp::Instance& inst = gadget(index);
  const Model m = Model::parse(model_name);

  const auto result = checker::explore(
      inst, m, {.max_channel_length = 2, .max_states = 30000});

  const auto solutions = spp::stable_assignments(inst);

  // Every quiescent outcome of a reliable model is a stable solution.
  if (m.reliable()) {
    for (const auto& q : result.quiescent_assignments) {
      EXPECT_TRUE(spp::is_solution(inst, q))
          << gadget_name(index) << " under " << model_name;
    }
  }
  // No stable solutions => no quiescent state is reachable — under
  // reliable models. Unreliable models can reach quiescent non-solutions
  // through unfair drop patterns (a route lost and never retransmitted),
  // which the explorer reports as reachability facts (see
  // docs/CHECKER.md).
  if (solutions.empty() && m.reliable()) {
    EXPECT_TRUE(result.quiescent_assignments.empty())
        << gadget_name(index) << " under " << model_name;
  }
  // An oscillation requires a dispute wheel (contrapositive of the
  // no-dispute-wheel safety theorem).
  if (result.oscillation_found) {
    EXPECT_FALSE(spp::is_dispute_wheel_free(inst))
        << gadget_name(index) << " under " << model_name;
  }
  // Dispute-wheel-free + exhaustive => provably no oscillation.
  if (spp::is_dispute_wheel_free(inst) && result.exhaustive) {
    EXPECT_FALSE(result.oscillation_found)
        << gadget_name(index) << " under " << model_name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    GadgetsTimesModels, RegistrySweepTest,
    ::testing::Combine(::testing::Range(0, 10),
                       ::testing::Values("R1O", "RMS", "REA", "U1O")),
    [](const auto& suite_info) {
      static const auto all = spp::all_gadgets();
      std::string name =
          all[static_cast<std::size_t>(std::get<0>(suite_info.param))].name +
          "_" + std::get<1>(suite_info.param);
      for (char& ch : name) {
        if (ch == '-') {
          ch = '_';
        }
      }
      return name;
    });

}  // namespace
}  // namespace commroute
