// Tests for the event-driven scheduler and run statistics.
#include <gtest/gtest.h>

#include <numeric>

#include "engine/executor.hpp"
#include "engine/runner.hpp"
#include "engine/scheduler.hpp"
#include "model/multi.hpp"
#include "spp/gadgets.hpp"

namespace commroute::engine {
namespace {

using model::Model;

TEST(EventDriven, StepsAreLegalInR1O) {
  const spp::Instance inst = spp::example_a2();
  EventDrivenScheduler sched(inst);
  NetworkState state(inst);
  for (int i = 0; i < 200; ++i) {
    const auto step = sched.next(state);
    model::require_step_allowed(Model::parse("R1O"), inst, step);
    execute_step(state, step);
  }
}

TEST(EventDriven, ConvergesOnSafeInstances) {
  for (const auto& make : {spp::good_gadget, spp::example_a3,
                           spp::example_a5}) {
    const spp::Instance inst = make();
    EventDrivenScheduler sched(inst);
    const auto run = engine::run(inst, sched, {.max_steps = 5000});
    EXPECT_EQ(run.outcome, Outcome::kConverged);
  }
}

TEST(EventDriven, TriggersTheDestinationsFirstAnnouncement) {
  const spp::Instance inst = spp::good_gadget();
  EventDrivenScheduler sched(inst);
  NetworkState state(inst);
  // All channels start empty: the idle rotation must reach d and fire its
  // announcement within one pass over the nodes.
  std::size_t steps = 0;
  while (state.messages_in_flight() == 0 && steps < inst.node_count()) {
    execute_step(state, sched.next(state));
    ++steps;
  }
  EXPECT_GT(state.messages_in_flight(), 0u);
}

TEST(EventDriven, ServesMessagesPromptly) {
  // Once messages exist, every step consumes one until drained.
  const spp::Instance inst = spp::good_gadget();
  EventDrivenScheduler sched(inst);
  NetworkState state(inst);
  const auto run_until_messages = [&] {
    while (state.messages_in_flight() == 0) {
      execute_step(state, sched.next(state));
    }
  };
  run_until_messages();
  const std::size_t before = state.messages_in_flight();
  const auto step = sched.next(state);
  const StepEffect effect = execute_step(state, step);
  ASSERT_EQ(effect.reads.size(), 1u);
  EXPECT_EQ(effect.reads[0].processed, 1u);
  EXPECT_LE(state.messages_in_flight(), before + effect.sent.size());
}

TEST(EventDriven, HasASignatureForCycleDetection) {
  const spp::Instance inst = spp::disagree();
  EventDrivenScheduler sched(inst);
  EXPECT_TRUE(sched.signature().has_value());
}

TEST(MultiNodeRandom, StepsAreLegalUnrestrictedSteps) {
  const spp::Instance inst = spp::example_a2();
  for (const char* base : {"R1A", "RMS", "REO", "U1O"}) {
    const model::ExtendedModel m =
        model::ExtendedModel::parse(std::string("multi-") + base);
    MultiNodeRandomScheduler sched(Model::parse(base), inst,
                                   Rng(11), 0.5, 16);
    NetworkState state(inst);
    for (int i = 0; i < 150; ++i) {
      const auto step = sched.next(state);
      model::require_extended_step_allowed(m, inst, step);
      execute_step(state, step);
    }
  }
}

TEST(MultiNodeRandom, ConvergesOnSafeInstances) {
  const spp::Instance inst = spp::good_gadget();
  for (const char* base : {"RMS", "REA"}) {
    MultiNodeRandomScheduler sched(Model::parse(base), inst, Rng(5));
    const auto run = engine::run(inst, sched, {.max_steps = 5000});
    EXPECT_EQ(run.outcome, Outcome::kConverged) << base;
  }
}

TEST(MultiNodeRandom, SweepCoversEveryChannelOverTime) {
  const spp::Instance inst = spp::disagree();
  MultiNodeRandomScheduler sched(Model::parse("R1O"), inst, Rng(2),
                                 /*node_prob=*/0.0, /*sweep_period=*/2);
  NetworkState state(inst);
  std::vector<bool> attempted(inst.graph().channel_count(), false);
  for (int i = 0; i < 40; ++i) {
    const auto step = sched.next(state);
    for (const auto& read : step.reads) {
      attempted[read.channel] = true;
    }
    execute_step(state, step);
  }
  for (ChannelIdx c = 0; c < inst.graph().channel_count(); ++c) {
    EXPECT_TRUE(attempted[c]) << inst.graph().channel_name(c);
  }
}

TEST(RunStats, NodeActivationsSumToStepsForSingleNodeSchedules) {
  const spp::Instance inst = spp::good_gadget();
  RoundRobinScheduler sched(Model::parse("RMS"), inst);
  const auto run = engine::run(inst, sched);
  ASSERT_EQ(run.node_activations.size(), inst.node_count());
  const std::uint64_t total = std::accumulate(
      run.node_activations.begin(), run.node_activations.end(),
      std::uint64_t{0});
  EXPECT_EQ(total, run.steps);
}

TEST(RunStats, SynchronousActivationsCountEveryNodePerStep) {
  const spp::Instance inst = spp::good_gadget();
  SynchronousScheduler sched(Model::parse("REA"), inst);
  const auto run = engine::run(inst, sched, {.max_steps = 1000});
  ASSERT_EQ(run.outcome, Outcome::kConverged);
  for (const std::uint64_t count : run.node_activations) {
    EXPECT_EQ(count, run.steps);
  }
}

TEST(RunStats, ChannelOccupancyHighWaterMark) {
  const spp::Instance inst = spp::disagree();
  RoundRobinScheduler sched(Model::parse("RMS"), inst);
  const auto run = engine::run(inst, sched);
  EXPECT_GE(run.max_channel_occupancy, 1u);
  EXPECT_LE(run.max_channel_occupancy, 8u);
}

}  // namespace
}  // namespace commroute::engine
