// RunReport: the single-pass JSONL -> report builder, the deterministic
// JSON rendering (byte-identical on re-run, no generation metadata),
// the static HTML rendering, and the StreamingSummarizer spill path the
// whole thing sits on.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/analysis.hpp"
#include "obs/report.hpp"

namespace commroute::obs {
namespace {

/// A mixed artifact: events with sketch blobs, telemetry, progress,
/// campaign rows, a critical path, a flight recording, and one
/// malformed line.
std::string mixed_fixture() {
  return
      R"({"type":"engine_run","wall_us":1200,"critical_path_len":5,"critical_path_us":900,"obs_budget":"sketched","flap_topk":{"capacity":16,"total":10,"entries":[{"key":3,"count":7,"error":0},{"key":1,"count":3,"error":0}]}})"
      "\n"
      R"({"type":"sim_summary","latency_hist":{"precision_bits":5,"count":4,"sum":40,"min":5,"max":15,"p50":10,"p90":15,"p99":15,"buckets":3}})"
      "\n"
      R"({"type":"telemetry_snapshot","seq":0,"elapsed_ms":0,"rss_bytes":1000,"pool.queue_depth":2})"
      "\n"
      R"({"type":"telemetry_snapshot","seq":1,"elapsed_ms":10,"rss_bytes":3000,"pool.queue_depth":1})"
      "\n"
      R"({"type":"progress_snapshot","name":"campaign.rows","done":3,"total":4,"fraction":0.75,"rate_per_sec":12.5,"eta_ms":80,"elapsed_ms":10,"updates":3})"
      "\n"
      R"({"type":"campaign_row","row":{"instance":"BAD","outcome":"oscillating","steps":40,"wall_ms":1.5}})"
      "\n"
      R"({"type":"campaign_row","row":{"instance":"GOOD","outcome":"converged","steps":12,"wall_ms":0.5}})"
      "\n"
      "this line is not json\n"
      R"({"type":"recording_header","kind":"run","instance_name":"BAD-GADGET","model":"UMS","scheduler":"rr","seed":7,"outcome":"oscillating","first_step":1,"steps":2,"nodes":3,"initial":["e","e","e"]})"
      "\n"
      R"({"type":"recording_step","t":1,"step":"x","pi":["e","d b","e"]})"
      "\n"
      R"({"type":"recording_step","t":2,"step":"y","pi":["d a","d b","e"]})"
      "\n"
      R"({"type":"recording_footer","steps":2,"changes":2})"
      "\n";
}

TEST(RunReport, SinglePassCollectsEverySection) {
  std::istringstream in(mixed_fixture());
  const RunReport report = build_report(in, "fixture.jsonl");

  EXPECT_EQ(report.source, "fixture.jsonl");
  EXPECT_EQ(report.events.lines, 12u);
  EXPECT_EQ(report.events.malformed, 1u);

  // Telemetry series: rss_bytes and pool.queue_depth, two samples each.
  ASSERT_EQ(report.telemetry.size(), 2u);
  EXPECT_EQ(report.telemetry[0].name, "pool.queue_depth");
  EXPECT_EQ(report.telemetry[1].name, "rss_bytes");
  EXPECT_EQ(report.telemetry[1].samples, 2u);
  EXPECT_EQ(report.telemetry[1].peak, 3000u);
  EXPECT_EQ(report.telemetry[1].last, 3000u);

  ASSERT_EQ(report.progress.size(), 1u);
  EXPECT_EQ(report.progress[0].name, "campaign.rows");
  EXPECT_EQ(report.progress[0].done, 3u);
  EXPECT_DOUBLE_EQ(report.progress[0].fraction, 0.75);

  // Structural sketch detection: one histogram blob, one top-K blob.
  ASSERT_EQ(report.quantiles.size(), 1u);
  EXPECT_EQ(report.quantiles[0].label, "sim_summary.latency_hist");
  EXPECT_EQ(report.quantiles[0].count, 4u);
  EXPECT_EQ(report.quantiles[0].p90, 15u);
  ASSERT_EQ(report.topk.size(), 1u);
  EXPECT_EQ(report.topk[0].first, "engine_run.flap_topk");
  const auto entries = report.topk[0].second.top();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].key, 3u);
  EXPECT_EQ(entries[0].count, 7u);

  EXPECT_EQ(report.campaign_rows, 2u);
  EXPECT_EQ(report.outcome_counts.at("converged"), 1u);
  EXPECT_EQ(report.outcome_counts.at("oscillating"), 1u);
  EXPECT_EQ(report.campaign_steps_hist.count(), 2u);
  EXPECT_EQ(report.campaign_steps_hist.max(), 40u);

  EXPECT_EQ(report.critical_path_events, 1u);
  EXPECT_EQ(report.critical_path_len_max, 5u);
  EXPECT_EQ(report.critical_path_us_max, 900u);

  // Recording: node 1 changes at step 1, node 0 at step 2.
  EXPECT_TRUE(report.has_recording);
  EXPECT_EQ(report.recording_instance, "BAD-GADGET");
  EXPECT_EQ(report.recording_nodes, 3u);
  EXPECT_EQ(report.recording_steps, 2u);
  EXPECT_EQ(report.recording_changes, 2u);
  const auto flappers = report.recording_flappers.top();
  ASSERT_EQ(flappers.size(), 2u);
  EXPECT_EQ(flappers[0].count, 1u);
  EXPECT_EQ(flappers[1].count, 1u);
}

TEST(RunReport, JsonRenderingIsDeterministicAndClockFree) {
  std::istringstream first(mixed_fixture());
  std::istringstream second(mixed_fixture());
  const std::string a = report_json(build_report(first, "f.jsonl"));
  const std::string b = report_json(build_report(second, "f.jsonl"));
  EXPECT_EQ(a, b);
  // The determinism quarantine: no generation wall clock, host, or RSS
  // of the *reporting* process may enter the document.
  EXPECT_EQ(a.find("created_unix_ms"), std::string::npos);
  EXPECT_EQ(a.find("argv"), std::string::npos);
  // And it round-trips as JSON.
  const auto doc = json_parse(a);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("type")->as_string(), "run_report");
  EXPECT_EQ(doc->find("campaign")->find("rows")->as_number(), 2.0);
  EXPECT_EQ(doc->find("recording")->find("steps")->as_number(), 2.0);
}

TEST(RunReport, HtmlIsSelfContainedAndStatic) {
  std::istringstream in(mixed_fixture());
  const RunReport report = build_report(in, "fixture.jsonl");
  const std::string html = report_html(report, "");

  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("<style>"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  // Self-contained and static: no scripts, no external fetches.
  EXPECT_EQ(html.find("<script"), std::string::npos);
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
  // Every section rendered.
  EXPECT_NE(html.find("Events"), std::string::npos);
  EXPECT_NE(html.find("Progress"), std::string::npos);
  EXPECT_NE(html.find("Telemetry"), std::string::npos);
  EXPECT_NE(html.find("Sketched distributions"), std::string::npos);
  EXPECT_NE(html.find("Heavy hitters"), std::string::npos);
  EXPECT_NE(html.find("Campaign"), std::string::npos);
  EXPECT_NE(html.find("Critical path"), std::string::npos);
  EXPECT_NE(html.find("Flight recording"), std::string::npos);
  EXPECT_NE(html.find("BAD-GADGET"), std::string::npos);
  // The custom title lands in <title> and <h1>.
  const std::string titled = report_html(report, "nightly sweep");
  EXPECT_NE(titled.find("<title>nightly sweep</title>"), std::string::npos);
  EXPECT_NE(titled.find("<h1>nightly sweep</h1>"), std::string::npos);
}

TEST(RunReport, EmptyInputProducesAnEmptyButValidReport) {
  std::istringstream in("");
  const RunReport report = build_report(in, "empty.jsonl");
  EXPECT_EQ(report.events.lines, 0u);
  const auto doc = json_parse(report_json(report));
  ASSERT_TRUE(doc.has_value());
  const std::string html = report_html(report, "");
  EXPECT_NE(html.find("0 lines"), std::string::npos);
}

TEST(ReportSeries, DecimationIsBoundedAndDeterministic) {
  ReportSeries a;
  a.name = "rss_bytes";
  for (std::uint64_t i = 0; i < 5000; ++i) {
    a.add(i, i * 2);
  }
  EXPECT_EQ(a.samples, 5000u);
  EXPECT_LE(a.points.size(), ReportSeries::kSeriesCap);
  EXPECT_GE(a.points.size(), ReportSeries::kSeriesCap / 4);
  EXPECT_EQ(a.peak, 9998u);
  EXPECT_EQ(a.last, 9998u);
  EXPECT_EQ(a.points.front().first, 0u);
  // Same stream, same decimation.
  ReportSeries b;
  b.name = "rss_bytes";
  for (std::uint64_t i = 0; i < 5000; ++i) {
    b.add(i, i * 2);
  }
  EXPECT_EQ(a.points, b.points);
}

TEST(StreamingSummarizer, IncrementalFeedMatchesOneShotSummary) {
  const std::string fixture = mixed_fixture();
  std::istringstream batch(fixture);
  const JsonlSummary expected = summarize_jsonl(batch);

  StreamingSummarizer streaming;
  std::istringstream lines(fixture);
  std::string line;
  while (std::getline(lines, line)) {
    streaming.add_line(line);
  }
  const JsonlSummary got = streaming.summary();
  ASSERT_EQ(got.types.size(), expected.types.size());
  EXPECT_EQ(got.lines, expected.lines);
  EXPECT_EQ(got.malformed, expected.malformed);
  for (std::size_t i = 0; i < got.types.size(); ++i) {
    EXPECT_EQ(got.types[i].type, expected.types[i].type);
    EXPECT_EQ(got.types[i].count, expected.types[i].count);
    EXPECT_EQ(got.types[i].p50_us, expected.types[i].p50_us);
    EXPECT_EQ(got.types[i].p99_us, expected.types[i].p99_us);
  }
}

TEST(StreamingSummarizer, SpillsPastTheExactCapWithBoundedError) {
  StreamingSummarizer summarizer;
  const std::size_t n = StreamingSummarizer::kExactCap * 3;
  for (std::size_t i = 0; i < n; ++i) {
    // Durations 1..n in arrival order; p50 of the whole stream is n/2.
    summarizer.add_line(R"({"type":"span","name":"s","ts_us":0,"dur_us":)" +
                        std::to_string(i + 1) + "}");
  }
  const JsonlSummary summary = summarizer.summary();
  ASSERT_EQ(summary.types.size(), 1u);
  const EventTypeSummary& row = summary.types[0];
  EXPECT_EQ(row.count, n);
  EXPECT_EQ(row.timed, n);
  EXPECT_EQ(row.max_us, n);
  // Sketched percentiles: upper bounds within the LogHistogram(7)
  // relative error (< 1%), clamped to the observed max.
  const auto check = [&](std::uint64_t got, double pct) {
    const double truth = pct * static_cast<double>(n);
    EXPECT_GE(static_cast<double>(got), truth * 0.999);
    EXPECT_LE(static_cast<double>(got), truth * 1.01);
  };
  check(row.p50_us, 0.5);
  check(row.p90_us, 0.9);
  check(row.p99_us, 0.99);
  EXPECT_LE(row.p99_us, row.max_us);
}

}  // namespace
}  // namespace commroute::obs
