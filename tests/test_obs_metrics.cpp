#include <gtest/gtest.h>

#include <cstdlib>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace commroute::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetOverwritesRecordMaxKeepsHighWater) {
  Gauge g;
  g.set(10);
  g.set(3);
  EXPECT_EQ(g.value(), 3u);
  g.record_max(7);
  g.record_max(5);
  EXPECT_EQ(g.value(), 7u);
}

TEST(Histogram, BucketSemanticsAreLeInclusive) {
  Histogram h({10, 100});
  h.observe(5);
  h.observe(10);   // boundary lands in the le=10 bucket
  h.observe(11);
  h.observe(1000);  // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1026u);
  ASSERT_EQ(h.bucket_counts().size(), 3u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
}

TEST(Histogram, RejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({10, 10}), PreconditionError);
  EXPECT_THROW(Histogram({10, 5}), PreconditionError);
}

TEST(Histogram, ExponentialBucketsGrowByFactor) {
  const auto bounds = exponential_buckets(16, 4.0, 4);
  EXPECT_EQ(bounds, (std::vector<std::uint64_t>{16, 64, 256, 1024}));
}

TEST(Registry, ReturnsTheSameMetricPerName) {
  Registry r;
  Counter& c = r.counter("a");
  r.counter("a").add(2);
  EXPECT_EQ(c.value(), 2u);
  Gauge& g = r.gauge("g");
  r.gauge("g").record_max(9);
  EXPECT_EQ(g.value(), 9u);
  Histogram& h = r.histogram("h", {1, 2});
  r.histogram("h", {99}).observe(1);  // bounds of later calls ignored
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.upper_bounds(), (std::vector<std::uint64_t>{1, 2}));
}

TEST(Registry, SnapshotListsEveryMetric) {
  Registry r;
  r.counter("steps").add(5);
  r.gauge("frontier").set(3);
  r.histogram("lat", {10}).observe(4);
  const auto samples = r.snapshot();
  ASSERT_EQ(samples.size(), 3u);
  bool saw_counter = false, saw_gauge = false, saw_histogram = false;
  for (const MetricSample& s : samples) {
    if (s.name == "steps") {
      EXPECT_EQ(s.kind, MetricSample::Kind::kCounter);
      EXPECT_EQ(s.value, 5u);
      saw_counter = true;
    } else if (s.name == "frontier") {
      EXPECT_EQ(s.kind, MetricSample::Kind::kGauge);
      EXPECT_EQ(s.value, 3u);
      saw_gauge = true;
    } else if (s.name == "lat") {
      EXPECT_EQ(s.kind, MetricSample::Kind::kHistogram);
      EXPECT_EQ(s.value, 1u);  // count
      EXPECT_EQ(s.sum, 4u);
      EXPECT_EQ(s.counts.size(), 2u);
      saw_histogram = true;
    }
  }
  EXPECT_TRUE(saw_counter && saw_gauge && saw_histogram);
}

TEST(Registry, ToJsonRoundTripsThroughTheParser) {
  Registry r;
  r.counter("engine.steps").add(123);
  r.gauge("checker.frontier_peak").record_max(17);
  r.histogram("engine.run_steps", {16, 64}).observe(20);
  const auto parsed = json_parse(r.to_json());
  ASSERT_TRUE(parsed.has_value());
  const JsonValue* counters = parsed->find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* steps = counters->find("engine.steps");
  ASSERT_NE(steps, nullptr);
  EXPECT_DOUBLE_EQ(steps->as_number(), 123.0);
  const JsonValue* gauges = parsed->find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_NE(gauges->find("checker.frontier_peak"), nullptr);
  const JsonValue* histograms = parsed->find("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* hist = histograms->find("engine.run_steps");
  ASSERT_NE(hist, nullptr);
  const JsonValue* buckets = hist->find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_TRUE(buckets->is_array());
  EXPECT_EQ(buckets->as_array().size(), 3u);  // two bounds + overflow
}

TEST(ScopedTimer, RecordsElapsedIntoCounterOnDestruction) {
  Counter c;
  {
    ScopedTimer t(&c);
    while (t.elapsed_us() < 1) {
      // spin until at least one microsecond elapsed
    }
  }
  EXPECT_GE(c.value(), 1u);
}

TEST(ScopedTimer, ElapsedIsMonotonic) {
  Counter c;
  ScopedTimer t(&c);
  std::uint64_t last = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t now = t.elapsed_us();
    EXPECT_GE(now, last);
    last = now;
  }
}

TEST(ScopedTimer, NullTargetIsDisabled) {
  ScopedTimer t(nullptr);
  EXPECT_EQ(t.elapsed_us(), 0u);
}

TEST(RegistryMerge, CountersAddGaugesMaxHistogramsAddBucketwise) {
  Registry target;
  target.counter("c").add(10);
  target.gauge("g").record_max(5);
  target.histogram("h", {10, 100}).observe(7);

  Registry shard;
  shard.counter("c").add(3);
  shard.counter("only_in_shard").add(1);
  shard.gauge("g").record_max(9);
  shard.gauge("low").record_max(2);
  shard.histogram("h", {10, 100}).observe(50);
  shard.histogram("h", {10, 100}).observe(5000);
  shard.histogram("new_h", {1}).observe(0);

  target.merge_from(shard);
  EXPECT_EQ(target.counter("c").value(), 13u);
  EXPECT_EQ(target.counter("only_in_shard").value(), 1u);
  EXPECT_EQ(target.gauge("g").value(), 9u);
  EXPECT_EQ(target.gauge("low").value(), 2u);
  const Histogram& h = target.histogram("h", {});
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 7u + 50u + 5000u);
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{1, 1, 1}));
  EXPECT_EQ(target.histogram("new_h", {}).count(), 1u);
}

TEST(RegistryMerge, IsOrderIndependent) {
  // Merge combiners commute, so shard order cannot change the result —
  // the property the parallel campaign's determinism guarantee rests on.
  Registry a, b;
  a.counter("x").add(2);
  a.gauge("g").record_max(4);
  b.counter("x").add(5);
  b.gauge("g").record_max(3);

  Registry ab, ba;
  ab.merge_from(a);
  ab.merge_from(b);
  ba.merge_from(b);
  ba.merge_from(a);
  EXPECT_EQ(ab.counter("x").value(), ba.counter("x").value());
  EXPECT_EQ(ab.gauge("g").value(), ba.gauge("g").value());
}

TEST(RegistryMerge, SingleBucketHistogramMerges) {
  // The degenerate single-bound shape (one bucket + overflow) must
  // merge like any other: same-bounds requirement, bucket-wise adds.
  Registry target, shard;
  target.histogram("h", {10}).observe(3);    // in-bucket
  shard.histogram("h", {10}).observe(10);    // boundary is <=-inclusive
  shard.histogram("h", {10}).observe(11);    // overflow
  target.merge_from(shard);
  const Histogram& h = target.histogram("h", {});
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 24u);
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{2, 1}));

  // Merging an empty shard (histogram declared, never observed) is a
  // no-op, not a corruption.
  Registry empty;
  empty.histogram("h", {10});
  target.merge_from(empty);
  EXPECT_EQ(target.histogram("h", {}).count(), 3u);
}

TEST(RegistryMerge, MismatchedHistogramBoundsThrow) {
  Registry target, shard;
  target.histogram("h", {1, 2}).observe(1);
  shard.histogram("h", {1, 3}).observe(1);
  EXPECT_THROW(target.merge_from(shard), PreconditionError);
}

TEST(RegistryMerge, GaugePoliciesMergeMaxSumAndLast) {
  // Shard-and-merge with per-gauge semantics: high-watermarks take the
  // max, occurrence counts add, kLast takes the incoming value.
  Registry target, shard_a, shard_b;
  target.gauge("peak").set(10);                         // kMax default
  target.gauge("occurrences", GaugeMerge::kSum).set(2);
  target.gauge("config", GaugeMerge::kLast).set(1);
  shard_a.gauge("peak").set(30);
  shard_a.gauge("occurrences", GaugeMerge::kSum).set(5);
  shard_a.gauge("config", GaugeMerge::kLast).set(7);
  shard_b.gauge("peak").set(20);
  shard_b.gauge("occurrences", GaugeMerge::kSum).set(3);
  target.merge_from(shard_a);
  target.merge_from(shard_b);
  EXPECT_EQ(target.gauge("peak").value(), 30u);
  EXPECT_EQ(target.gauge("occurrences", GaugeMerge::kSum).value(), 10u);
  EXPECT_EQ(target.gauge("config", GaugeMerge::kLast).value(), 7u);
}

TEST(RegistryMerge, SumPolicyGaugesSurviveParallelSharding) {
  // The regression this policy exists for: N workers each flagging
  // engine.cycle_detection_disabled once must merge to N, not silently
  // max-merge to 1 and hide how many rows ran blind.
  Registry target;
  for (int worker = 0; worker < 8; ++worker) {
    Registry shard;
    shard.gauge("engine.cycle_detection_disabled", GaugeMerge::kSum)
        .add(1);
    target.merge_from(shard);
  }
  EXPECT_EQ(
      target.gauge("engine.cycle_detection_disabled", GaugeMerge::kSum)
          .value(),
      8u);
}

TEST(RegistryMerge, GaugePolicyIsFixedAtCreation) {
  Registry registry;
  registry.gauge("g", GaugeMerge::kSum).set(1);
  // A later lookup with a different policy does not silently rewrite
  // the merge semantics.
  EXPECT_EQ(registry.gauge("g").merge_policy(), GaugeMerge::kSum);
  Registry shard;
  shard.gauge("g", GaugeMerge::kSum).set(4);
  registry.merge_from(shard);
  EXPECT_EQ(registry.gauge("g").value(), 5u);
}

TEST(JsonNumber, FormatsRoundTrippably) {
  EXPECT_EQ(json_number(1.5), "1.5");
  EXPECT_EQ(json_number(0.0), "0");
  const double v = 0.1;
  char* end = nullptr;
  EXPECT_EQ(std::strtod(json_number(v).c_str(), &end), v);
}

}  // namespace
}  // namespace commroute::obs
