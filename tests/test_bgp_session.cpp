#include <gtest/gtest.h>

#include "bgp/session.hpp"

namespace commroute::bgp {
namespace {

using model::Model;

TEST(Session, DefaultConfigIsTheQueueingModel) {
  // The paper: "the flexibility of configuration parameters in the BGP
  // specification suggest that [the queueing models] most naturally
  // correspond to correct operation of BGP on the Internet."
  EXPECT_EQ(model_for(SessionConfig{}), Model::parse("RMS"));
}

TEST(Session, RouteRefreshGivesPollingModels) {
  SessionConfig config;
  config.processing = UpdateProcessing::kRouteRefresh;
  config.peers = PeerScope::kAllPeers;
  EXPECT_EQ(model_for(config), Model::parse("REA"));
  config.peers = PeerScope::kSinglePeer;
  EXPECT_EQ(model_for(config), Model::parse("R1A"));
}

TEST(Session, EventDrivenBgpIsMessagePassing) {
  SessionConfig config;
  config.peers = PeerScope::kSinglePeer;
  config.processing = UpdateProcessing::kPerUpdate;
  EXPECT_EQ(model_for(config), Model::parse("R1O"));
}

TEST(Session, DatagramTransportGivesUnreliableModels) {
  SessionConfig config;
  config.transport = Transport::kDatagram;
  EXPECT_EQ(model_for(config), Model::parse("UMS"));
}

TEST(Session, RoundTripsAllTwentyFourModels) {
  for (const Model& m : Model::all()) {
    EXPECT_EQ(model_for(config_for(m)), m) << m.name();
  }
}

TEST(Session, DescribeMentionsTheKnobs) {
  SessionConfig config;
  config.processing = UpdateProcessing::kRouteRefresh;
  const std::string text = config.describe();
  EXPECT_NE(text.find("route refresh"), std::string::npos);
  EXPECT_NE(text.find("TCP"), std::string::npos);
}

}  // namespace
}  // namespace commroute::bgp
