#include <gtest/gtest.h>

#include <map>

#include "realization/facts.hpp"

namespace commroute::realization {
namespace {

using model::Model;

const Fact* find_fact(const std::string& source, const std::string& a,
                      const std::string& b) {
  for (const Fact& f : foundational_facts()) {
    if (f.source == source && f.realized == Model::parse(a) &&
        f.realizer == Model::parse(b)) {
      return &f;
    }
  }
  return nullptr;
}

TEST(Facts, TotalCount) {
  // 24 reflexive + 12 (P3.3.1) + 6 (P3.3.2) + 12 (P3.3.3)
  // + 16 (P3.3.4) + 8 (T3.5) + 2 (P3.4) + 2 (P3.6) + 1 (T3.7)
  // + 5 (T3.8) + 6 (T3.9) + 4 (P3.10-13) = 98.
  EXPECT_EQ(foundational_facts().size(), 98u);
}

TEST(Facts, ReflexivityForEveryModel) {
  std::size_t count = 0;
  for (const Fact& f : foundational_facts()) {
    if (f.source == "reflexivity") {
      EXPECT_EQ(f.realized, f.realizer);
      EXPECT_EQ(f.kind, FactKind::kLowerBound);
      EXPECT_EQ(f.strength, Strength::kExact);
      ++count;
    }
  }
  EXPECT_EQ(count, 24u);
}

TEST(Facts, Prop331CoversAllTwelvePairs) {
  std::size_t count = 0;
  for (const Fact& f : foundational_facts()) {
    if (f.source == "Prop. 3.3(1)") {
      EXPECT_TRUE(f.realized.reliable());
      EXPECT_FALSE(f.realizer.reliable());
      EXPECT_EQ(f.realized.neighbors, f.realizer.neighbors);
      EXPECT_EQ(f.realized.messages, f.realizer.messages);
      EXPECT_EQ(f.strength, Strength::kExact);
      ++count;
    }
  }
  EXPECT_EQ(count, 12u);
}

TEST(Facts, KeyTheoremInstances) {
  const Fact* t35 = find_fact("Thm. 3.5", "RMS", "R1S");
  ASSERT_NE(t35, nullptr);
  EXPECT_EQ(t35->kind, FactKind::kLowerBound);
  EXPECT_EQ(t35->strength, Strength::kRepetition);

  const Fact* p36r = find_fact("Prop. 3.6", "R1S", "R1O");
  ASSERT_NE(p36r, nullptr);
  EXPECT_EQ(p36r->strength, Strength::kSubsequence);

  const Fact* p36u = find_fact("Prop. 3.6", "U1S", "U1O");
  ASSERT_NE(p36u, nullptr);
  EXPECT_EQ(p36u->strength, Strength::kRepetition);

  const Fact* t37 = find_fact("Thm. 3.7", "U1O", "R1S");
  ASSERT_NE(t37, nullptr);
  EXPECT_EQ(t37->strength, Strength::kExact);
}

TEST(Facts, NegativeResultsAreUpperBounds) {
  const Fact* t38 = find_fact("Thm. 3.8", "R1O", "REA");
  ASSERT_NE(t38, nullptr);
  EXPECT_EQ(t38->kind, FactKind::kUpperBound);
  EXPECT_EQ(t38->strength, Strength::kNotPreserving);

  const Fact* p310 = find_fact("Prop. 3.10", "REO", "R1O");
  ASSERT_NE(p310, nullptr);
  EXPECT_EQ(p310->kind, FactKind::kUpperBound);
  EXPECT_EQ(p310->strength, Strength::kRepetition);

  const Fact* p311 = find_fact("Prop. 3.11", "REA", "R1O");
  ASSERT_NE(p311, nullptr);
  EXPECT_EQ(p311->strength, Strength::kSubsequence);

  const Fact* p312 = find_fact("Prop. 3.12", "REA", "R1S");
  ASSERT_NE(p312, nullptr);
  EXPECT_EQ(p312->strength, Strength::kRepetition);
}

TEST(Facts, Thm38And39CoverTheFiveStrongModels) {
  std::map<std::string, int> targets;
  for (const Fact& f : foundational_facts()) {
    if (f.source == "Thm. 3.8") {
      EXPECT_EQ(f.realized, Model::parse("R1O"));
      ++targets[f.realizer.name()];
    }
  }
  EXPECT_EQ(targets.size(), 5u);
  for (const char* name : {"REO", "REF", "R1A", "RMA", "REA"}) {
    EXPECT_EQ(targets[name], 1) << name;
  }
}

}  // namespace
}  // namespace commroute::realization
