// End-to-end reproduction of the paper's Appendix A examples.
#include <gtest/gtest.h>

#include "engine/runner.hpp"
#include "spp/gadgets.hpp"
#include "test_util.hpp"
#include "trace/recording.hpp"

namespace commroute {
namespace {

using model::Model;

// ---- Example A.1 (DISAGREE, Fig. 5) ----------------------------------------

TEST(ExampleA1, R1OOscillationMatchesThePaperNarrative) {
  const spp::Instance inst = spp::disagree();
  const auto [script, loop_from] =
      testutil::disagree_r1o_oscillation(inst);
  engine::ScriptedScheduler sched(script, loop_from);
  const engine::RunResult result = engine::run(
      inst, sched, {.max_steps = 400, .enforce_model = Model::parse("R1O")});
  ASSERT_EQ(result.outcome, engine::Outcome::kOscillating);

  // Within the cycle, x alternates between xd and xyd, y between yd and
  // yxd — the "choice of more preferred route causes a withdrawal" loop.
  const NodeId x = inst.graph().node("x");
  const NodeId y = inst.graph().node("y");
  std::set<std::string> x_paths, y_paths;
  for (std::size_t t = result.cycle_start; t < result.trace.size(); ++t) {
    x_paths.insert(inst.path_name(result.trace.at(t)[x]));
    y_paths.insert(inst.path_name(result.trace.at(t)[y]));
  }
  EXPECT_EQ(x_paths, (std::set<std::string>{"xd", "xyd"}));
  EXPECT_EQ(y_paths, (std::set<std::string>{"yd", "yxd"}));
}

// ---- Example A.2 (Fig. 6) ---------------------------------------------------

TEST(ExampleA2, REOTraceMatchesThePaperTable) {
  const spp::Instance inst = spp::example_a2();
  const trace::Recording rec = testutil::record_example_a2_reo(inst);

  // The paper's table: t, updating node, path chosen at that step.
  const std::vector<std::pair<std::string, std::string>> expected{
      {"d", "d"},    {"x", "xd"},     {"a", "axd"},  {"u", "uaxd"},
      {"v", "vuaxd"}, {"y", "yd"},    {"a", "ayd"},  {"u", "(eps)"},
      {"v", "vayd"}, {"z", "zd"},     {"a", "azd"},  {"v", "vazd"},
      {"u", "uazd"}};
  ASSERT_EQ(rec.steps.size(), expected.size());
  for (std::size_t t = 0; t < expected.size(); ++t) {
    const NodeId v = rec.steps[t].step.node();
    EXPECT_EQ(inst.graph().name(v), expected[t].first) << "t=" << t + 1;
    EXPECT_EQ(inst.path_name(rec.trace.at(t + 1)[v]), expected[t].second)
        << "t=" << t + 1;
  }
}

TEST(ExampleA2, TwoMessagesQueueInTheChannelFromV) {
  // "although u does not have a path, there are two messages in the
  //  channel from v" after step 12.
  const spp::Instance inst = spp::example_a2();
  trace::Recording rec = testutil::record_example_a2_reo(inst);
  const ChannelIdx vu = inst.graph().channel(inst.graph().node("v"),
                                             inst.graph().node("u"));
  // The recording's final state is after t = 13 where u consumed one; the
  // check at t=12 is visible in the step-13 read effect instead.
  const auto& read_effects = rec.steps[12].effect.reads;
  bool saw_vu = false;
  for (const auto& re : read_effects) {
    if (re.channel == vu) {
      saw_vu = true;
      EXPECT_EQ(re.processed, 1u);  // REO takes one of the two
    }
  }
  EXPECT_TRUE(saw_vu);
  EXPECT_EQ(rec.final_state.channel(vu).size(), 1u);  // vazd still queued
}

TEST(ExampleA2, ContinuationOscillatesForever) {
  const spp::Instance inst = spp::example_a2();
  model::ActivationScript script = testutil::named_script(
      inst, {"d", "x", "a", "u", "v", "y", "a", "u", "v", "z", "a", "v",
             "u"},
      false);
  const std::size_t loop_from = script.size();
  for (const char* n : {"v", "u", "a", "d", "x", "y", "z"}) {
    script.push_back(model::read_every_one_step(inst, inst.graph().node(n)));
  }
  engine::ScriptedScheduler sched(script, loop_from);
  const engine::RunResult result = engine::run(
      inst, sched,
      {.max_steps = 2000, .enforce_model = Model::parse("REO")});
  EXPECT_EQ(result.outcome, engine::Outcome::kOscillating);

  // u and v oscillate between their direct and indirect routes.
  const NodeId u = inst.graph().node("u");
  std::set<std::string> u_paths;
  for (std::size_t t = result.cycle_start; t < result.trace.size(); ++t) {
    u_paths.insert(inst.path_name(result.trace.at(t)[u]));
  }
  EXPECT_TRUE(u_paths.count("uazd"));
  EXPECT_TRUE(u_paths.count("uvazd"));
}

// ---- Example A.3 (Fig. 7) ---------------------------------------------------

TEST(ExampleA3, REOTraceMatchesThePaperTable) {
  const spp::Instance inst = spp::example_a3();
  const trace::Recording rec = testutil::record_example_a3_reo(inst);
  const std::vector<std::pair<std::string, std::string>> expected{
      {"d", "d"},   {"b", "bd"},   {"u", "ubd"},  {"v", "vbd"},
      {"a", "ad"},  {"u", "uad"},  {"v", "vad"},  {"s", "subd"},
      {"s", "suad"}, {"s", "suad"}};
  ASSERT_EQ(rec.steps.size(), expected.size());
  for (std::size_t t = 0; t < expected.size(); ++t) {
    const NodeId v = rec.steps[t].step.node();
    EXPECT_EQ(inst.graph().name(v), expected[t].first) << "t=" << t + 1;
    EXPECT_EQ(inst.path_name(rec.trace.at(t + 1)[v]), expected[t].second)
        << "t=" << t + 1;
  }
}

TEST(ExampleA3, REOExecutionConverges) {
  const spp::Instance inst = spp::example_a3();
  model::ActivationScript script = testutil::named_script(
      inst, {"d", "b", "u", "v", "a", "u", "v", "s", "s", "s"}, false);
  const std::size_t loop_from = script.size();
  for (const char* n : {"d", "a", "b", "u", "v", "s"}) {
    script.push_back(model::read_every_one_step(inst, inst.graph().node(n)));
  }
  engine::ScriptedScheduler sched(script, loop_from);
  const engine::RunResult result = engine::run(inst, sched,
                                               {.max_steps = 500});
  EXPECT_EQ(result.outcome, engine::Outcome::kConverged);
  EXPECT_EQ(inst.path_name(
                result.final_assignment[inst.graph().node("s")]),
            "suad");
}

// ---- Example A.4 (Fig. 8) ---------------------------------------------------

TEST(ExampleA4, REATraceMatchesThePaperTable) {
  const spp::Instance inst = spp::example_a4();
  const trace::Recording rec = testutil::record_example_a4_rea(inst);
  const std::vector<std::pair<std::string, std::string>> expected{
      {"d", "d"}, {"a", "ad"}, {"u", "uad"},
      {"b", "bd"}, {"u", "ubd"}, {"s", "subd"}};
  ASSERT_EQ(rec.steps.size(), expected.size());
  for (std::size_t t = 0; t < expected.size(); ++t) {
    const NodeId v = rec.steps[t].step.node();
    EXPECT_EQ(inst.graph().name(v), expected[t].first) << "t=" << t + 1;
    EXPECT_EQ(inst.path_name(rec.trace.at(t + 1)[v]), expected[t].second)
        << "t=" << t + 1;
  }
}

TEST(ExampleA4, ChannelUToSHoldsUadThenUbdBeforeStep6) {
  // "Before the last step, the first message in the channel (u, s) is uad
  //  and the second message is ubd."
  const spp::Instance inst = spp::example_a4();
  model::ActivationScript prefix = testutil::named_script(
      inst, {"d", "a", "u", "b", "u"}, true);
  const trace::Recording rec = trace::record_script(inst, prefix);
  const ChannelIdx us = inst.graph().channel(inst.graph().node("u"),
                                             inst.graph().node("s"));
  const engine::Channel& channel = rec.final_state.channel(us);
  ASSERT_EQ(channel.size(), 2u);
  EXPECT_EQ(inst.path_name(channel.at(0).path), "uad");
  EXPECT_EQ(inst.path_name(channel.at(1).path), "ubd");
}

// ---- Example A.5 (Fig. 9) ---------------------------------------------------

TEST(ExampleA5, REATraceMatchesThePaperTable) {
  const spp::Instance inst = spp::example_a5();
  const trace::Recording rec = testutil::record_example_a5_rea(inst);
  const std::vector<std::pair<std::string, std::string>> expected{
      {"d", "d"},  {"b", "bd"},  {"c", "cbd"}, {"x", "xd"},
      {"s", "scbd"}, {"a", "ad"}, {"c", "cad"}, {"s", "sxd"}};
  ASSERT_EQ(rec.steps.size(), expected.size());
  for (std::size_t t = 0; t < expected.size(); ++t) {
    const NodeId v = rec.steps[t].step.node();
    EXPECT_EQ(inst.graph().name(v), expected[t].first) << "t=" << t + 1;
    EXPECT_EQ(inst.path_name(rec.trace.at(t + 1)[v]), expected[t].second)
        << "t=" << t + 1;
  }
}

// ---- Example A.6 (multi-node polling) ---------------------------------------

TEST(ExampleA6, MultiNodePollingOscillatesOnDisagree) {
  const spp::Instance inst = spp::disagree();
  const NodeId d = inst.graph().node("d");
  const NodeId x = inst.graph().node("x");
  const NodeId y = inst.graph().node("y");
  const Graph& g = inst.graph();

  // X(1) = {(d,d)} is modeled as d's self-activation (poll any channel);
  // then alternate "both poll d" / "both poll each other".
  model::ActivationScript script;
  script.push_back(model::poll_one_step(inst, d, x));
  const std::size_t loop_from = script.size();
  script.push_back(model::make_multi_step(
      {x, y}, {model::ReadSpec{g.channel(d, x), std::nullopt, {}},
               model::ReadSpec{g.channel(d, y), std::nullopt, {}}}));
  script.push_back(model::make_multi_step(
      {x, y}, {model::ReadSpec{g.channel(y, x), std::nullopt, {}},
               model::ReadSpec{g.channel(x, y), std::nullopt, {}}}));
  // Keep d fair.
  script.push_back(model::make_multi_step(
      {d}, {model::ReadSpec{g.channel(x, d), std::nullopt, {}},
            model::ReadSpec{g.channel(y, d), std::nullopt, {}}}));

  engine::ScriptedScheduler sched(script, loop_from);
  const engine::RunResult result = engine::run(inst, sched,
                                               {.max_steps = 500});
  EXPECT_EQ(result.outcome, engine::Outcome::kOscillating);

  // Simultaneous polling flips both nodes together: xd/yd then xyd/yxd.
  std::set<std::string> pairs;
  for (std::size_t t = result.cycle_start; t < result.trace.size(); ++t) {
    pairs.insert(inst.path_name(result.trace.at(t)[x]) + "/" +
                 inst.path_name(result.trace.at(t)[y]));
  }
  EXPECT_TRUE(pairs.count("xd/yd"));
  EXPECT_TRUE(pairs.count("xyd/yxd"));
}

TEST(ExampleA6, SingleNodePollingCannotReproduceIt) {
  // In single-node R1A the same instance provably converges (Ex. A.1),
  // so the multi-node oscillation is strictly beyond |U| = 1 polling.
  const spp::Instance inst = spp::disagree();
  engine::RoundRobinScheduler sched(Model::parse("R1A"), inst);
  const engine::RunResult result = engine::run(inst, sched);
  EXPECT_EQ(result.outcome, engine::Outcome::kConverged);
}

}  // namespace
}  // namespace commroute
