// ProgressEstimator semantics (monotone counts, fraction/ETA shape) and
// the TelemetrySampler progress_snapshot integration.
#include <gtest/gtest.h>

#include <string>

#include "obs/events.hpp"
#include "obs/json.hpp"
#include "obs/progress.hpp"
#include "obs/resource.hpp"

namespace commroute::obs {
namespace {

TEST(ProgressEstimator, FractionAndCountsTrackUpdates) {
  ProgressEstimator progress("explore");
  ProgressSnapshot snap = progress.snapshot();
  EXPECT_EQ(snap.name, "explore");
  EXPECT_EQ(snap.done, 0u);
  EXPECT_EQ(snap.total, 0u);
  EXPECT_DOUBLE_EQ(snap.fraction, 0.0);
  EXPECT_EQ(snap.updates, 0u);

  progress.update(25, 100);
  snap = progress.snapshot();
  EXPECT_EQ(snap.done, 25u);
  EXPECT_EQ(snap.total, 100u);
  EXPECT_DOUBLE_EQ(snap.fraction, 0.25);
  EXPECT_EQ(snap.updates, 1u);

  // done > total (open-ended frontiers can shrink the denominator):
  // fraction clamps to 1.
  progress.update(120, 100);
  snap = progress.snapshot();
  EXPECT_DOUBLE_EQ(snap.fraction, 1.0);
}

TEST(ProgressEstimator, StaleSmallerCountsNeverRollBackwards) {
  // Concurrent workers report fetch_add(1) + 1 out of order; a late
  // smaller value must not rewind the bar.
  ProgressEstimator progress("campaign.rows");
  progress.update(7, 10);
  progress.update(3, 10);
  const ProgressSnapshot snap = progress.snapshot();
  EXPECT_EQ(snap.done, 7u);
  EXPECT_EQ(snap.updates, 2u);
}

TEST(ProgressEstimator, DetailRidesTheSnapshotUnderItsLabel) {
  ProgressEstimator progress("engine.steps", "steps_since_change");
  progress.update(64, 1000);
  progress.set_detail(12);
  const ProgressSnapshot snap = progress.snapshot();
  EXPECT_EQ(snap.detail_label, "steps_since_change");
  EXPECT_EQ(snap.detail, 12u);
}

TEST(ProgressEstimator, EtaIsZeroWithoutAnObservedRate) {
  ProgressEstimator progress("idle");
  progress.update(1, 100);
  // A single update gives no rate sample, hence no ETA guess.
  const ProgressSnapshot snap = progress.snapshot();
  EXPECT_DOUBLE_EQ(snap.rate_per_sec, 0.0);
  EXPECT_EQ(snap.eta_ms, 0u);
}

TEST(TelemetrySampler, EmitsOneProgressSnapshotPerEstimatorPerTick) {
  MemorySink sink;
  ProgressEstimator rows("campaign.rows");
  ProgressEstimator steps("engine.steps", "steps_since_change");
  rows.update(2, 8);
  steps.update(128, 4096);
  TelemetrySampler::Options options;
  options.interval_ms = 3600 * 1000;  // only the start/stop snapshots
  options.process_memory = false;
  TelemetrySampler sampler(sink, options);
  sampler.add_progress(&rows);
  sampler.add_progress(&steps);
  sampler.start();
  sampler.stop();

  std::size_t telemetry = 0;
  std::size_t rows_snapshots = 0;
  std::size_t steps_snapshots = 0;
  for (const std::string& line : sink.lines()) {
    const auto event = json_parse(line);
    ASSERT_TRUE(event.has_value());
    const std::string type = event->find("type")->as_string();
    if (type == "telemetry_snapshot") {
      ++telemetry;
      continue;
    }
    ASSERT_EQ(type, "progress_snapshot");
    const std::string name = event->find("name")->as_string();
    if (name == "campaign.rows") {
      ++rows_snapshots;
      EXPECT_EQ(event->find("done")->as_number(), 2.0);
      EXPECT_EQ(event->find("total")->as_number(), 8.0);
      EXPECT_DOUBLE_EQ(event->find("fraction")->as_number(), 0.25);
      EXPECT_EQ(event->find("steps_since_change"), nullptr);
    } else {
      EXPECT_EQ(name, "engine.steps");
      ++steps_snapshots;
      EXPECT_NE(event->find("steps_since_change"), nullptr);
    }
  }
  // start() + stop() each emit one telemetry snapshot and one progress
  // snapshot per registered estimator.
  EXPECT_EQ(telemetry, 2u);
  EXPECT_EQ(rows_snapshots, 2u);
  EXPECT_EQ(steps_snapshots, 2u);
}

TEST(TelemetrySampler, ProgressRegistrationMustPrecedeStart) {
  MemorySink sink;
  ProgressEstimator progress("late");
  TelemetrySampler::Options options;
  options.interval_ms = 3600 * 1000;
  options.process_memory = false;
  TelemetrySampler sampler(sink, options);
  sampler.start();
  EXPECT_THROW(sampler.add_progress(&progress), std::logic_error);
  sampler.stop();
}

}  // namespace
}  // namespace commroute::obs
