// Empirical check of Def. 3.1 (oscillation preservation) against the
// derived realization table: whenever the closure says B realizes A at
// any positive strength, an instance that can oscillate under A must be
// able to oscillate under B. DISAGREE's 24-model checker verdicts provide
// the test bed.
#include <gtest/gtest.h>

#include <map>

#include "checker/explorer.hpp"
#include "realization/closure.hpp"
#include "spp/gadgets.hpp"

namespace commroute {
namespace {

using model::Model;

class OscillationPreservationTest : public ::testing::Test {
 protected:
  static const std::map<int, checker::ExploreResult>& verdicts() {
    static const std::map<int, checker::ExploreResult> results = [] {
      std::map<int, checker::ExploreResult> out;
      const spp::Instance inst = spp::disagree();
      for (const Model& m : Model::all()) {
        out.emplace(m.index(),
                    checker::explore(inst, m, {.max_channel_length = 3}));
      }
      return out;
    }();
    return results;
  }
};

TEST_F(OscillationPreservationTest, PositiveRelationsPreserveDisagree) {
  const realization::RealizationTable table =
      realization::RealizationTable::closure();
  for (const Model& a : Model::all()) {
    if (!verdicts().at(a.index()).oscillation_found) {
      continue;
    }
    for (const Model& b : Model::all()) {
      if (realization::level(table.cell(a, b).lo) >=
          realization::level(realization::Strength::kOscillation)) {
        EXPECT_TRUE(verdicts().at(b.index()).oscillation_found)
            << b.name() << " must preserve the DISAGREE oscillation of "
            << a.name();
      }
    }
  }
}

TEST_F(OscillationPreservationTest,
       ProvenNonPreservationMatchesSeparations) {
  // Where the closure proves hi = -1 with A oscillating, B must not
  // oscillate *on this instance* when B's verdict is exhaustive. (A
  // non-exhaustive negative is only consistent, not conclusive.)
  const realization::RealizationTable table =
      realization::RealizationTable::closure();
  const Model r1o = Model::parse("R1O");
  ASSERT_TRUE(verdicts().at(r1o.index()).oscillation_found);
  for (const char* name : {"REO", "REF", "R1A", "RMA", "REA"}) {
    const Model b = Model::parse(name);
    EXPECT_EQ(table.cell(r1o, b).hi,
              realization::Strength::kNotPreserving);
    EXPECT_TRUE(verdicts().at(b.index()).proves_no_oscillation()) << name;
  }
}

TEST_F(OscillationPreservationTest, SevenStrongReliableModelsOscillate) {
  // Sec. 3.5: R1O, RMO, R1S, RMS, RES, R1F, RMF capture every
  // oscillation, so all of them oscillate on DISAGREE.
  for (const char* name :
       {"R1O", "RMO", "R1S", "RMS", "RES", "R1F", "RMF"}) {
    EXPECT_TRUE(
        verdicts().at(Model::parse(name).index()).oscillation_found)
        << name;
  }
}

}  // namespace
}  // namespace commroute
