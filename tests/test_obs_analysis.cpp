// The analysis core behind commroute-obs: JSONL aggregation, span
// self-time accounting, Chrome-trace import, and the bench-diff perf
// gate (the injected-regression case is the acceptance criterion the
// CI gate rests on).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/analysis.hpp"
#include "support/error.hpp"

namespace commroute {
namespace {

obs::JsonValue parse_or_die(const std::string& text) {
  const auto parsed = obs::json_parse(text);
  EXPECT_TRUE(parsed.has_value()) << "invalid JSON: " << text;
  return parsed.value_or(obs::JsonValue{});
}

const obs::EventTypeSummary* find_type(const obs::JsonlSummary& summary,
                                       const std::string& type) {
  for (const obs::EventTypeSummary& row : summary.types) {
    if (row.type == type) {
      return &row;
    }
  }
  return nullptr;
}

TEST(SummarizeJsonl, AggregatesPerTypeWithEveryDurationSpelling) {
  std::istringstream in(
      "{\"type\":\"span\",\"dur_us\":100}\n"
      "{\"type\":\"span\",\"dur_us\":200}\n"
      "{\"type\":\"span\",\"dur_us\":300}\n"
      "{\"type\":\"engine_run\",\"wall_us\":5000}\n"
      "{\"type\":\"engine_run\",\"wall_ms\":2}\n"
      "{\"type\":\"campaign_row\",\"row\":{\"wall_ms\":1.5}}\n"
      "{\"type\":\"no_dur\",\"states\":4}\n"
      "{\"notype\":1}\n"
      "\n"
      "this is not json\n");
  const obs::JsonlSummary summary = obs::summarize_jsonl(in);
  EXPECT_EQ(summary.lines, 9u);  // blank line skipped
  EXPECT_EQ(summary.malformed, 1u);
  ASSERT_EQ(summary.types.size(), 5u);
  EXPECT_EQ(summary.types.front().type, "span");  // count-descending

  const obs::EventTypeSummary* span = find_type(summary, "span");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->count, 3u);
  EXPECT_EQ(span->timed, 3u);
  EXPECT_EQ(span->total_us, 600u);
  EXPECT_EQ(span->p50_us, 200u);
  EXPECT_EQ(span->max_us, 300u);

  const obs::EventTypeSummary* run = find_type(summary, "engine_run");
  ASSERT_NE(run, nullptr);
  EXPECT_EQ(run->timed, 2u);
  EXPECT_EQ(run->total_us, 7000u);  // wall_us + wall_ms * 1000

  const obs::EventTypeSummary* row = find_type(summary, "campaign_row");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->total_us, 1500u);  // nested row.wall_ms

  const obs::EventTypeSummary* bare = find_type(summary, "no_dur");
  ASSERT_NE(bare, nullptr);
  EXPECT_EQ(bare->count, 1u);
  EXPECT_EQ(bare->timed, 0u);

  EXPECT_NE(find_type(summary, "(untyped)"), nullptr);
}

TEST(SpanSelfTimes, SubtractsDirectChildrenAndSortsBySelf) {
  std::vector<obs::SpanRecord> records;
  const auto add = [&](std::uint32_t id, std::uint32_t parent,
                       std::uint64_t dur, const char* name) {
    obs::SpanRecord rec;
    rec.id = id;
    rec.parent = parent;
    rec.dur_us = dur;
    rec.name = name;
    records.push_back(std::move(rec));
  };
  add(1, 0, 100, "root");
  add(2, 1, 30, "child");
  add(3, 1, 20, "child");
  add(4, 2, 25, "leaf");

  const std::vector<obs::SpanStat> stats = obs::span_self_times(records);
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].name, "root");
  EXPECT_EQ(stats[0].self_us, 50u);  // 100 - (30 + 20)
  EXPECT_EQ(stats[0].total_us, 100u);

  const obs::SpanStat& child = stats[1].name == "child" ? stats[1] : stats[2];
  EXPECT_EQ(child.count, 2u);
  EXPECT_EQ(child.total_us, 50u);
  EXPECT_EQ(child.self_us, 25u);  // (30 - 25) + 20; only DIRECT children
  EXPECT_EQ(child.max_us, 30u);

  const obs::SpanStat& leaf = stats[1].name == "leaf" ? stats[1] : stats[2];
  EXPECT_EQ(leaf.self_us, 25u);
}

TEST(SpanSelfTimes, ClampsWhenChildrenOutlastTheParent) {
  std::vector<obs::SpanRecord> records(2);
  records[0].id = 1;
  records[0].dur_us = 10;
  records[0].name = "parent";
  records[1].id = 2;
  records[1].parent = 1;
  records[1].dur_us = 50;  // clock granularity artifact
  records[1].name = "child";
  const auto stats = obs::span_self_times(records);
  for (const obs::SpanStat& stat : stats) {
    if (stat.name == "parent") {
      EXPECT_EQ(stat.self_us, 0u);  // clamped, not wrapped
    }
  }
}

TEST(SpansFromChromeTrace, ReadsSlicesAndIgnoresMetadata) {
  const auto doc = parse_or_die(
      "{\"traceEvents\":["
      "{\"name\":\"a\",\"ph\":\"X\",\"ts\":0,\"dur\":100,\"pid\":1,"
      "\"tid\":0,\"args\":{\"id\":1,\"parent\":0}},"
      "{\"name\":\"b\",\"ph\":\"X\",\"ts\":10,\"dur\":50,\"pid\":1,"
      "\"tid\":2,\"args\":{\"id\":2,\"parent\":1}},"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1},"
      "{\"name\":\"mark\",\"ph\":\"i\",\"ts\":5}"
      "],\"displayTimeUnit\":\"ms\"}");
  const auto records = obs::spans_from_chrome_trace(doc);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "a");
  EXPECT_EQ(records[0].id, 1u);
  EXPECT_EQ(records[1].parent, 1u);
  EXPECT_EQ(records[1].tid, 2u);
  EXPECT_EQ(records[1].start_us, 10u);
  EXPECT_EQ(records[1].dur_us, 50u);

  // Not a trace document at all: empty, not a crash.
  EXPECT_TRUE(obs::spans_from_chrome_trace(parse_or_die("{}")).empty());
}

obs::JsonValue bench_doc(const std::string& results) {
  return parse_or_die("{\"name\":\"fixture\",\"metrics\":{},\"results\":[" +
                      results + "]}");
}

std::string bench_row(const std::string& name, double ms) {
  return "{\"name\":\"" + name +
         "\",\"iterations\":10,\"real_ms_per_iter\":" +
         obs::json_number(ms) + "}";
}

TEST(BenchDiff, FlagsOnlyDeltasBeyondTheThreshold) {
  const auto baseline = bench_doc(bench_row("A", 2.0) + "," +
                                  bench_row("B", 4.0) + "," +
                                  bench_row("C", 1.0));
  const auto current = bench_doc(bench_row("A", 2.1) + "," +  // +5%
                                 bench_row("B", 4.6) + "," +  // +15%
                                 bench_row("C", 0.8));        // -20%
  const obs::BenchDiff diff = obs::bench_diff(baseline, current, 10.0);
  EXPECT_TRUE(diff.regression);
  ASSERT_EQ(diff.deltas.size(), 3u);
  EXPECT_FALSE(diff.deltas[0].regression);
  EXPECT_NEAR(diff.deltas[0].delta_pct, 5.0, 1e-9);
  EXPECT_TRUE(diff.deltas[1].regression);
  EXPECT_NEAR(diff.deltas[1].delta_pct, 15.0, 1e-9);
  EXPECT_FALSE(diff.deltas[2].regression);  // improvements never flag
  EXPECT_NEAR(diff.deltas[2].delta_pct, -20.0, 1e-9);

  // The same +15% passes under a looser threshold.
  EXPECT_FALSE(obs::bench_diff(baseline, current, 20.0).regression);
}

TEST(BenchDiff, TracksBenchmarksPresentOnOnlyOneSide) {
  const auto baseline = bench_doc(bench_row("A", 2.0) + "," +
                                  bench_row("OLD", 1.0));
  const auto current = bench_doc(bench_row("A", 2.0) + "," +
                                 bench_row("NEW", 3.0));
  const obs::BenchDiff diff = obs::bench_diff(baseline, current, 10.0);
  EXPECT_FALSE(diff.regression);
  ASSERT_EQ(diff.deltas.size(), 1u);
  ASSERT_EQ(diff.only_in_baseline.size(), 1u);
  EXPECT_EQ(diff.only_in_baseline[0], "OLD");
  ASSERT_EQ(diff.only_in_current.size(), 1u);
  EXPECT_EQ(diff.only_in_current[0], "NEW");
}

TEST(BenchDiff, ZeroBaselineNeverDividesByZero) {
  const auto baseline = bench_doc(bench_row("A", 0.0));
  const auto current = bench_doc(bench_row("A", 5.0));
  const obs::BenchDiff diff = obs::bench_diff(baseline, current, 10.0);
  EXPECT_DOUBLE_EQ(diff.deltas[0].delta_pct, 0.0);
  EXPECT_FALSE(diff.regression);
}

TEST(BenchDiff, RejectsDocumentsWithoutTheBenchShape) {
  const auto good = bench_doc(bench_row("A", 1.0));
  EXPECT_THROW(obs::bench_diff(parse_or_die("{\"foo\":1}"), good, 10.0),
               ParseError);
  EXPECT_THROW(obs::bench_diff(good, parse_or_die("{\"foo\":1}"), 10.0),
               ParseError);
  const auto missing_ms =
      parse_or_die("{\"results\":[{\"name\":\"A\"}]}");
  EXPECT_THROW(obs::bench_diff(good, missing_ms, 10.0), ParseError);
}

obs::JsonValue bench_doc_with_metrics(const std::string& metrics) {
  return parse_or_die("{\"name\":\"fixture\",\"metrics\":{" + metrics +
                      "},\"results\":[" + bench_row("A", 1.0) + "]}");
}

TEST(BenchDiff, ByteMetricsGateUnderTheirOwnThreshold) {
  const auto baseline = bench_doc_with_metrics(
      "\"wall_ms\":100,\"peak_rss_bytes\":1000,"
      "\"tracked_peak_bytes\":500");
  const auto current = bench_doc_with_metrics(
      "\"wall_ms\":900,\"peak_rss_bytes\":1100,"  // +10% — under mem gate
      "\"tracked_peak_bytes\":800");              // +60% — over mem gate
  const obs::BenchDiff diff =
      obs::bench_diff(baseline, current, 10.0, 25.0);
  // wall_ms is not a byte metric; the 9x growth never enters the gate.
  ASSERT_EQ(diff.mem_deltas.size(), 2u);
  EXPECT_FALSE(diff.regression);  // real_ms_per_iter is unchanged
  EXPECT_TRUE(diff.mem_regression);
  EXPECT_EQ(diff.mem_deltas[0].name, "peak_rss_bytes");
  EXPECT_FALSE(diff.mem_deltas[0].regression);
  EXPECT_EQ(diff.mem_deltas[1].name, "tracked_peak_bytes");
  EXPECT_TRUE(diff.mem_deltas[1].regression);
  EXPECT_NEAR(diff.mem_deltas[1].delta_pct, 60.0, 1e-9);
  // A looser memory threshold passes the same growth.
  EXPECT_FALSE(obs::bench_diff(baseline, current, 10.0, 80.0)
                   .mem_regression);
}

TEST(BenchDiff, ByteMetricsMissingFromBaselineAreSkipped) {
  // Baselines that predate byte metrics must not fail the gate.
  const auto baseline = bench_doc_with_metrics("\"wall_ms\":100");
  const auto current = bench_doc_with_metrics(
      "\"wall_ms\":100,\"peak_rss_bytes\":999999");
  const obs::BenchDiff diff =
      obs::bench_diff(baseline, current, 10.0, 25.0);
  EXPECT_TRUE(diff.mem_deltas.empty());
  EXPECT_FALSE(diff.mem_regression);
  // And the reverse: a metric dropped from current is skipped too.
  const obs::BenchDiff reverse =
      obs::bench_diff(current, baseline, 10.0, 25.0);
  EXPECT_TRUE(reverse.mem_deltas.empty());
  EXPECT_FALSE(reverse.mem_regression);
}

// ---- Degradation edge cases (malformed / empty inputs) -------------------

TEST(SummarizeJsonl, EmptyAndDurationlessStreamsKeepZeroQuantiles) {
  std::istringstream empty("");
  const obs::JsonlSummary none = obs::summarize_jsonl(empty);
  EXPECT_EQ(none.lines, 0u);
  EXPECT_TRUE(none.types.empty());

  // Events with no duration at all: the percentile path must never
  // index into the empty histogram.
  std::istringstream in(
      "{\"type\":\"bare\"}\n"
      "{\"type\":\"bare\",\"states\":7}\n");
  const obs::JsonlSummary summary = obs::summarize_jsonl(in);
  const obs::EventTypeSummary* bare = find_type(summary, "bare");
  ASSERT_NE(bare, nullptr);
  EXPECT_EQ(bare->count, 2u);
  EXPECT_EQ(bare->timed, 0u);
  EXPECT_EQ(bare->p50_us, 0u);
  EXPECT_EQ(bare->p99_us, 0u);
  EXPECT_EQ(bare->max_us, 0u);
}

TEST(SpansFromJsonl, SkipsRecordsMissingRequiredFields) {
  // Unclosed spans (no dur_us), nameless records, and non-span noise
  // must be dropped without affecting well-formed neighbours.
  std::istringstream in(
      "{\"type\":\"span\",\"name\":\"open\",\"ts_us\":0}\n"
      "{\"type\":\"span\",\"ts_us\":0,\"dur_us\":5}\n"
      "{\"type\":\"event\",\"name\":\"x\",\"ts_us\":0,\"dur_us\":5}\n"
      "{\"type\":\"span\",\"name\":\"ok\",\"ts_us\":1,\"dur_us\":2,"
      "\"id\":1}\n");
  const auto records = obs::spans_from_jsonl(in);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].name, "ok");
}

TEST(SpanSelfTimes, MisNestedParentsDegradeGracefully) {
  // Parent ids pointing at missing spans, self-parented spans, and
  // children summing past the parent: self time clamps at zero and
  // the totals stay finite.
  std::vector<obs::SpanRecord> records;
  obs::SpanRecord dangling;
  dangling.id = 1;
  dangling.parent = 99;  // no such span
  dangling.name = "dangling";
  dangling.dur_us = 10;
  obs::SpanRecord self_cycle;
  self_cycle.id = 2;
  self_cycle.parent = 2;  // mis-nested: its own parent
  self_cycle.name = "cycle";
  self_cycle.dur_us = 8;
  records.push_back(dangling);
  records.push_back(self_cycle);
  const auto stats = obs::span_self_times(records);
  ASSERT_EQ(stats.size(), 2u);
  for (const obs::SpanStat& stat : stats) {
    if (stat.name == "dangling") {
      EXPECT_EQ(stat.self_us, 10u);  // orphan keeps its full duration
    } else {
      EXPECT_EQ(stat.name, "cycle");
      EXPECT_EQ(stat.self_us, 0u);  // clamped, not underflowed
    }
    EXPECT_EQ(stat.count, 1u);
  }
}

}  // namespace
}  // namespace commroute
