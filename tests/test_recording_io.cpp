// Recording serialization: JSONL round-trip (runs and checker
// witnesses), load-time structural validation, and deterministic replay
// including tamper detection.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "checker/explorer.hpp"
#include "engine/runner.hpp"
#include "model/script_io.hpp"
#include "sim/sim_runner.hpp"
#include "spp/gadgets.hpp"
#include "trace/recording_io.hpp"

namespace commroute {
namespace {

using model::Model;

/// A deterministic oscillating run with the flight recorder in full
/// mode: BAD GADGET has no stable assignment, so round-robin provably
/// cycles (45 steps under R1O).
engine::RunResult recorded_bad_gadget_run(const spp::Instance& instance) {
  const Model m = Model::parse("R1O");
  engine::RoundRobinScheduler sched(m, instance);
  engine::RunOptions options;
  options.enforce_model = m;
  options.flight.mode = engine::FlightRecorderOptions::Mode::kFull;
  options.flight.instance_name = "BAD-GADGET";
  options.flight.scheduler = "round-robin";
  engine::RunResult result = engine::run(instance, sched, options);
  EXPECT_EQ(result.outcome, engine::Outcome::kOscillating);
  EXPECT_TRUE(result.recording.has_value());
  return result;
}

TEST(RecordingIo, RoundTripPreservesDocument) {
  const spp::Instance bad = spp::bad_gadget();
  const engine::RunResult run = recorded_bad_gadget_run(bad);
  const trace::RecordingDoc& doc = *run.recording;

  const std::string jsonl = trace::recording_to_jsonl(bad, doc);
  std::istringstream in(jsonl);
  const trace::LoadedRecording loaded = trace::load_recording_jsonl(in);

  EXPECT_EQ(loaded.instance.node_count(), bad.node_count());
  EXPECT_EQ(loaded.doc.meta.kind, "recording");
  EXPECT_EQ(loaded.doc.meta.instance_name, "BAD-GADGET");
  EXPECT_EQ(loaded.doc.meta.model, "R1O");
  EXPECT_EQ(loaded.doc.meta.scheduler, "round-robin");
  EXPECT_EQ(loaded.doc.meta.outcome, "oscillating");
  EXPECT_EQ(loaded.doc.meta.first_step, 1u);
  EXPECT_TRUE(loaded.doc.complete());

  EXPECT_EQ(loaded.doc.initial, doc.initial);
  EXPECT_EQ(loaded.doc.assignments, doc.assignments);
  EXPECT_EQ(loaded.doc.io, doc.io);
  // Steps survive the script-syntax round-trip verbatim.
  EXPECT_EQ(model::format_script(loaded.instance, loaded.doc.steps),
            model::format_script(bad, doc.steps));
}

TEST(RecordingIo, WitnessRoundTripAndReplay) {
  const spp::Instance dis = spp::disagree();
  checker::ExploreOptions opts;
  opts.max_channel_length = 3;
  opts.extract_witness = true;
  const auto explored = checker::explore(dis, Model::parse("R1O"), opts);
  ASSERT_TRUE(explored.oscillation_found);
  ASSERT_FALSE(explored.witness_cycle.empty());

  const trace::RecordingDoc doc = trace::record_witness(
      dis, explored.witness_prefix, explored.witness_cycle);
  EXPECT_EQ(doc.meta.kind, "witness");
  EXPECT_EQ(doc.meta.witness_prefix_len, explored.witness_prefix.size());
  EXPECT_EQ(doc.meta.witness_cycle_len, explored.witness_cycle.size());
  EXPECT_EQ(doc.steps.size(), explored.witness_prefix.size() +
                                  2 * explored.witness_cycle.size());

  const std::string jsonl = trace::recording_to_jsonl(dis, doc);
  std::istringstream in(jsonl);
  const trace::LoadedRecording loaded = trace::load_recording_jsonl(in);
  EXPECT_EQ(loaded.doc.meta.kind, "witness");
  EXPECT_EQ(loaded.doc.meta.witness_cycle_len,
            explored.witness_cycle.size());
  EXPECT_EQ(loaded.doc.assignments, doc.assignments);

  const trace::ReplayResult replayed = trace::replay_recording(loaded);
  EXPECT_TRUE(replayed.identical);
  EXPECT_EQ(replayed.steps_replayed, doc.steps.size());
}

TEST(RecordingIo, SaveLoadReplayIsDeterministic) {
  const spp::Instance bad = spp::bad_gadget();
  const engine::RunResult run = recorded_bad_gadget_run(bad);
  const std::string path = "test_recording_io_roundtrip.recording.jsonl";
  trace::save_recording(path, bad, *run.recording);

  const trace::LoadedRecording loaded = trace::load_recording_file(path);
  std::remove(path.c_str());
  const trace::ReplayResult replayed = trace::replay_recording(loaded);
  EXPECT_TRUE(replayed.identical);
  EXPECT_FALSE(replayed.divergence.has_value());
  EXPECT_EQ(replayed.steps_replayed, run.steps);
  // The replayed {pi(t)} collapses to the same sequence the original run
  // produced (record -> serialize -> load -> replay is lossless).
  EXPECT_EQ(replayed.trace.collapsed(), run.trace.collapsed());
}

TEST(RecordingIo, TamperedAssignmentIsReportedAsDivergence) {
  const spp::Instance bad = spp::bad_gadget();
  const engine::RunResult run = recorded_bad_gadget_run(bad);
  const std::string jsonl = trace::recording_to_jsonl(bad, *run.recording);
  std::istringstream in(jsonl);
  trace::LoadedRecording loaded = trace::load_recording_jsonl(in);

  // Flip one mid-run assignment back to its predecessor at a step where
  // the run actually changed it.
  std::size_t tampered = loaded.doc.assignments.size();
  for (std::size_t t = 1; t < loaded.doc.assignments.size(); ++t) {
    if (loaded.doc.assignments[t] != loaded.doc.assignments[t - 1]) {
      loaded.doc.assignments[t] = loaded.doc.assignments[t - 1];
      tampered = t;
      break;
    }
  }
  ASSERT_LT(tampered, loaded.doc.assignments.size());

  const trace::ReplayResult replayed = trace::replay_recording(loaded);
  EXPECT_FALSE(replayed.identical);
  ASSERT_TRUE(replayed.divergence.has_value());
  EXPECT_EQ(replayed.divergence->step,
            loaded.doc.meta.first_step + tampered);
  EXPECT_NE(replayed.divergence->expected, replayed.divergence->actual);
}

TEST(RecordingIo, PartialRecordingCannotBeReplayed) {
  const spp::Instance bad = spp::bad_gadget();
  const engine::RunResult run = recorded_bad_gadget_run(bad);
  const std::string jsonl = trace::recording_to_jsonl(bad, *run.recording);
  std::istringstream in(jsonl);
  trace::LoadedRecording loaded = trace::load_recording_jsonl(in);
  loaded.doc.meta.first_step = 2;  // pretend it is a ring window
  EXPECT_FALSE(loaded.doc.complete());
  EXPECT_THROW(trace::replay_recording(loaded), PreconditionError);
}

TEST(RecordingIo, LoadRejectsMalformedInput) {
  const spp::Instance bad = spp::bad_gadget();
  const engine::RunResult run = recorded_bad_gadget_run(bad);
  const std::string jsonl = trace::recording_to_jsonl(bad, *run.recording);

  const auto load = [](const std::string& text) {
    std::istringstream in(text);
    return trace::load_recording_jsonl(in);
  };

  // Empty input.
  EXPECT_THROW(load(""), ParseError);

  // Truncated: drop the footer line.
  const std::size_t footer =
      jsonl.rfind("{\"type\":\"recording_footer\"");
  ASSERT_NE(footer, std::string::npos);
  EXPECT_THROW(load(jsonl.substr(0, footer)), ParseError);

  // A schema version newer than this reader.
  std::string newer = jsonl;
  const std::string tag =
      "\"schema_version\":" + std::to_string(trace::kRecordingSchemaVersion);
  ASSERT_NE(newer.find(tag), std::string::npos);
  newer.replace(newer.find(tag), tag.size(), "\"schema_version\":99");
  EXPECT_THROW(load(newer), ParseError);

  // Out-of-order steps: swap the first two step lines.
  std::istringstream lines_in(jsonl);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(lines_in, line)) {
    lines.push_back(line);
  }
  ASSERT_GE(lines.size(), 4u);
  std::swap(lines[1], lines[2]);
  std::string swapped;
  for (const std::string& l : lines) {
    swapped += l + "\n";
  }
  EXPECT_THROW(load(swapped), ParseError);
}

/// Erases `,"key":<value>` from every line of `jsonl` (value = a JSON
/// array or a bare number) — crafting schema-v1-shaped inputs.
std::string strip_field(const std::string& jsonl, const std::string& key,
                        bool first_line_only = false) {
  std::istringstream in(jsonl);
  std::string out, line;
  bool stripped_one = false;
  while (std::getline(in, line)) {
    const std::string tag = ",\"" + key + "\":";
    const std::size_t start = line.find(tag);
    if (start != std::string::npos && !(first_line_only && stripped_one)) {
      std::size_t end = start + tag.size();
      if (line[end] == '[') {
        end = line.find(']', end) + 1;
      } else {
        while (end < line.size() &&
               (std::isdigit(static_cast<unsigned char>(line[end])) != 0 ||
                line[end] == '-')) {
          ++end;
        }
      }
      line.erase(start, end - start);
      stripped_one = true;
    }
    out += line + "\n";
  }
  return out;
}

TEST(RecordingIo, CausalFieldsRoundTrip) {
  // Schema v2: "sel" (selection provenance) always, "t_us" on timed
  // (sim-driven) recordings; both survive the JSONL round-trip.
  const spp::Instance bad = spp::bad_gadget();
  sim::SimOptions opts;
  opts.model = Model::parse("U1O");
  opts.seed = 7;
  opts.link.loss_prob = 0.2;
  opts.flight.mode = engine::FlightRecorderOptions::Mode::kFull;
  const sim::SimResult result = sim::run(bad, opts);
  ASSERT_TRUE(result.run.recording.has_value());
  const trace::RecordingDoc& doc = *result.run.recording;
  ASSERT_EQ(doc.step_time_us.size(), doc.steps.size());
  ASSERT_EQ(doc.io.size(), doc.steps.size());
  for (std::size_t t = 0; t < doc.io.size(); ++t) {
    EXPECT_EQ(doc.io[t].selected.size(), doc.steps[t].nodes.size());
  }

  std::istringstream in(trace::recording_to_jsonl(bad, doc));
  const trace::LoadedRecording loaded = trace::load_recording_jsonl(in);
  EXPECT_EQ(loaded.doc.io, doc.io);
  EXPECT_EQ(loaded.doc.step_time_us, doc.step_time_us);
}

TEST(RecordingIo, V1ShapedFilesStillLoad) {
  // A file without any causal fields (what a v1 writer produced) loads
  // with those vectors simply empty.
  const spp::Instance bad = spp::bad_gadget();
  const engine::RunResult run = recorded_bad_gadget_run(bad);
  std::string jsonl = trace::recording_to_jsonl(bad, *run.recording);
  jsonl = strip_field(jsonl, "sel");
  const std::string tag =
      "\"schema_version\":" + std::to_string(trace::kRecordingSchemaVersion);
  ASSERT_NE(jsonl.find(tag), std::string::npos);
  jsonl.replace(jsonl.find(tag), tag.size(), "\"schema_version\":1");

  std::istringstream in(jsonl);
  const trace::LoadedRecording loaded = trace::load_recording_jsonl(in);
  EXPECT_EQ(loaded.doc.steps.size(), run.recording->steps.size());
  EXPECT_TRUE(loaded.doc.step_time_us.empty());
  for (const trace::StepIo& io : loaded.doc.io) {
    EXPECT_TRUE(io.selected.empty());
  }
  // And it still replays: replay never needed the causal fields.
  EXPECT_TRUE(trace::replay_recording(loaded).identical);
}

TEST(RecordingIo, RejectsInconsistentCausalFields) {
  const spp::Instance bad = spp::bad_gadget();
  const engine::RunResult run = recorded_bad_gadget_run(bad);
  const std::string jsonl = trace::recording_to_jsonl(bad, *run.recording);
  const auto load = [](const std::string& text) {
    std::istringstream in(text);
    return trace::load_recording_jsonl(in);
  };

  // Selection channel out of range.
  std::string bad_channel = jsonl;
  const std::size_t sel = bad_channel.find("\"sel\":[");
  ASSERT_NE(sel, std::string::npos);
  bad_channel.replace(sel, 8, "\"sel\":[99");
  EXPECT_THROW(load(bad_channel), ParseError);

  // Wrong arity: round-robin steps update exactly one node.
  std::string bad_arity = jsonl;
  const std::size_t close = bad_arity.find(']', bad_arity.find("\"sel\":["));
  ASSERT_NE(close, std::string::npos);
  bad_arity.insert(close, ",0");
  EXPECT_THROW(load(bad_arity), ParseError);

  // "sel" present on only some steps.
  EXPECT_THROW(load(strip_field(jsonl, "sel", /*first_line_only=*/true)),
               ParseError);

  // "t_us" present on only some steps (timed sim recording).
  sim::SimOptions opts;
  opts.model = Model::parse("U1O");
  opts.seed = 7;
  opts.flight.mode = engine::FlightRecorderOptions::Mode::kFull;
  const sim::SimResult timed = sim::run(bad, opts);
  ASSERT_TRUE(timed.run.recording.has_value());
  const std::string timed_jsonl =
      trace::recording_to_jsonl(bad, *timed.run.recording);
  ASSERT_NE(timed_jsonl.find("\"t_us\":"), std::string::npos);
  EXPECT_THROW(
      load(strip_field(timed_jsonl, "t_us", /*first_line_only=*/true)),
      ParseError);
}

TEST(RecordingIo, LoadSkipsLeadingSinkMetadataRecord) {
  const spp::Instance bad = spp::bad_gadget();
  const engine::RunResult run = recorded_bad_gadget_run(bad);
  const std::string jsonl =
      "{\"type\":\"meta\",\"schema_version\":1}\n" +
      trace::recording_to_jsonl(bad, *run.recording);
  std::istringstream in(jsonl);
  const trace::LoadedRecording loaded = trace::load_recording_jsonl(in);
  EXPECT_EQ(loaded.doc.steps.size(), run.recording->steps.size());
}

}  // namespace
}  // namespace commroute
