#include <gtest/gtest.h>

#include "support/error.hpp"
#include "realization/relation.hpp"

namespace commroute::realization {
namespace {

TEST(Strength, LevelsAreOrdered) {
  EXPECT_LT(level(Strength::kNotPreserving), level(Strength::kOscillation));
  EXPECT_LT(level(Strength::kOscillation), level(Strength::kSubsequence));
  EXPECT_LT(level(Strength::kSubsequence), level(Strength::kRepetition));
  EXPECT_LT(level(Strength::kRepetition), level(Strength::kExact));
}

TEST(Strength, MinAndFromLevel) {
  EXPECT_EQ(min_strength(Strength::kExact, Strength::kSubsequence),
            Strength::kSubsequence);
  EXPECT_EQ(strength_from_level(3), Strength::kRepetition);
  EXPECT_THROW(strength_from_level(5), PreconditionError);
  EXPECT_THROW(strength_from_level(-1), PreconditionError);
}

TEST(RelationBound, DefaultIsFullyUnknown) {
  const RelationBound b;
  EXPECT_TRUE(b.unknown());
  EXPECT_FALSE(b.known_exactly());
  EXPECT_EQ(b.paper_notation(), "");
}

TEST(RelationBound, TightenLoAndHi) {
  RelationBound b;
  EXPECT_TRUE(b.tighten_lo(Strength::kSubsequence, "test"));
  EXPECT_FALSE(b.tighten_lo(Strength::kSubsequence, "again"));
  EXPECT_FALSE(b.tighten_lo(Strength::kOscillation, "weaker"));
  EXPECT_EQ(b.lo_source, "test");
  EXPECT_TRUE(b.tighten_hi(Strength::kRepetition, "upper"));
  EXPECT_EQ(b.paper_notation(), "2,3");
}

TEST(RelationBound, ContradictionThrows) {
  RelationBound b;
  b.tighten_lo(Strength::kRepetition, "lower");
  EXPECT_THROW(b.tighten_hi(Strength::kSubsequence, "upper"),
               PreconditionError);
  RelationBound c;
  c.tighten_hi(Strength::kSubsequence, "upper");
  EXPECT_THROW(c.tighten_lo(Strength::kRepetition, "lower"),
               PreconditionError);
}

TEST(RelationBound, PaperNotationAllShapes) {
  const auto notate = [](int lo, int hi) {
    RelationBound b;
    b.lo = strength_from_level(lo);
    b.hi = strength_from_level(hi);
    return b.paper_notation();
  };
  EXPECT_EQ(notate(0, 0), "-1");
  EXPECT_EQ(notate(4, 4), "4");
  EXPECT_EQ(notate(3, 3), "3");
  EXPECT_EQ(notate(2, 2), "2");
  EXPECT_EQ(notate(0, 4), "");
  EXPECT_EQ(notate(3, 4), ">=3");
  EXPECT_EQ(notate(2, 4), ">=2");
  EXPECT_EQ(notate(0, 2), "<=2");
  EXPECT_EQ(notate(0, 3), "<=3");
  EXPECT_EQ(notate(2, 3), "2,3");
}

TEST(RelationBound, ParseRoundTripsEveryShape) {
  for (const char* cell : {"-1", "2", "3", "4", "", ">=2", ">=3", "<=2",
                           "<=3", "2,3"}) {
    const RelationBound b = parse_paper_notation(cell);
    EXPECT_EQ(b.paper_notation(), cell) << cell;
  }
}

TEST(RelationBound, ParseDiagonalAndWhitespace) {
  const RelationBound diag = parse_paper_notation("-");
  EXPECT_EQ(diag.lo, Strength::kExact);
  EXPECT_EQ(diag.hi, Strength::kExact);
  const RelationBound spaced = parse_paper_notation("  3 ");
  EXPECT_EQ(spaced.paper_notation(), "3");
}

TEST(RelationBound, ParseRejectsGarbage) {
  EXPECT_THROW(parse_paper_notation("5"), PreconditionError);
  EXPECT_THROW(parse_paper_notation(">=9"), PreconditionError);
  EXPECT_THROW(parse_paper_notation("3,2"), PreconditionError);
}

TEST(RelationBound, OverlapAndContainment) {
  const auto make = [](int lo, int hi) {
    RelationBound b;
    b.lo = strength_from_level(lo);
    b.hi = strength_from_level(hi);
    return b;
  };
  EXPECT_TRUE(make(2, 4).overlaps(make(3, 3)));
  EXPECT_TRUE(make(2, 4).contains(make(3, 3)));
  EXPECT_FALSE(make(3, 3).contains(make(2, 4)));
  EXPECT_FALSE(make(0, 1).overlaps(make(2, 4)));
  EXPECT_TRUE(make(0, 2).overlaps(make(2, 4)));
}

TEST(Strength, ToStringNames) {
  EXPECT_EQ(to_string(Strength::kExact), "exact");
  EXPECT_EQ(to_string(Strength::kRepetition), "repetition");
  EXPECT_EQ(to_string(Strength::kSubsequence), "subsequence");
  EXPECT_EQ(to_string(Strength::kOscillation), "oscillation-preserving");
  EXPECT_EQ(to_string(Strength::kNotPreserving),
            "not-oscillation-preserving");
}

}  // namespace
}  // namespace commroute::realization
