// Campaign integration of the scenario axes: perturbation variants and
// fault schedules sweep deterministically at any thread width.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "scenario/fault.hpp"
#include "scenario/perturb.hpp"
#include "spp/gadgets.hpp"
#include "study/campaign.hpp"

namespace commroute::study {
namespace {

// Strips the wall_ms column (index 10) from every CSV line so runs can
// be byte-compared; the same recipe the CI gate uses via awk.
std::string strip_wall(const std::string& csv) {
  std::string out;
  std::size_t start = 0;
  while (start < csv.size()) {
    std::size_t end = csv.find('\n', start);
    if (end == std::string::npos) {
      end = csv.size();
    }
    const std::string line = csv.substr(start, end - start);
    std::size_t col = 0;
    std::size_t field_start = 0;
    for (std::size_t i = 0; i <= line.size(); ++i) {
      if (i == line.size() || line[i] == ',') {
        if (col != 10) {
          out += line.substr(field_start, i - field_start);
        }
        if (i < line.size()) {
          out += ',';
        }
        field_start = i + 1;
        ++col;
      }
    }
    out += '\n';
    start = end + 1;
  }
  return out;
}

CampaignSpec scenario_spec(const spp::Instance* good,
                           const spp::Instance* disagree) {
  CampaignSpec spec;
  spec.instances = {{"good-gadget", good}, {"disagree", disagree}};
  spec.models = {model::Model::parse("R1O"), model::Model::parse("U1O")};
  spec.schedulers = {SchedulerKind::kRoundRobin, SchedulerKind::kSim};
  spec.seeds = 2;
  spec.perturbations = {scenario::parse_perturb_spec("tiebreak:1"),
                        scenario::parse_perturb_spec("rankswap:2")};
  spec.perturb_seeds = 2;
  scenario::FaultScheduleSpec flap;
  flap.link_flaps = 1;
  spec.fault_schedules = {scenario::FaultScheduleSpec{}, flap};
  return spec;
}

TEST(ScenarioCampaign, ProvenanceCoversEveryMaterializedVariant) {
  const spp::Instance good = spp::good_gadget();
  const spp::Instance dis = spp::disagree();
  CampaignSpec spec = scenario_spec(&good, &dis);
  spec.threads = 1;
  const CampaignResult result = run_campaign(spec);

  // instances x perturbation specs x perturb_seeds variants.
  ASSERT_EQ(result.provenance.size(), 2u * 2u * 2u);
  std::set<std::string> variants;
  for (const PerturbProvenance& p : result.provenance) {
    EXPECT_TRUE(p.base == "good-gadget" || p.base == "disagree");
    EXPECT_TRUE(p.label == "tiebreak:1" || p.label == "rankswap:2");
    EXPECT_EQ(p.variant.rfind(p.base + "~" + p.label + "#", 0), 0u);
    EXPECT_FALSE(p.record_json.empty());
    variants.insert(p.variant);
  }
  EXPECT_EQ(variants.size(), result.provenance.size());

  // Every variant produced rows, and each row's perturb columns match
  // its variant's provenance.
  for (const PerturbProvenance& p : result.provenance) {
    bool saw_row = false;
    for (const CampaignRow& row : result.rows) {
      if (row.instance != p.variant) {
        continue;
      }
      saw_row = true;
      EXPECT_EQ(row.perturb, p.label);
      EXPECT_EQ(row.perturb_edits, p.applied);
    }
    EXPECT_TRUE(saw_row) << p.variant;
  }
}

TEST(ScenarioCampaign, FaultAxisOnlyTouchesSimRows) {
  const spp::Instance good = spp::good_gadget();
  const spp::Instance dis = spp::disagree();
  CampaignSpec spec = scenario_spec(&good, &dis);
  spec.threads = 1;
  const CampaignResult result = run_campaign(spec);

  bool saw_faulted = false;
  for (const CampaignRow& row : result.rows) {
    if (row.scheduler != SchedulerKind::kSim) {
      EXPECT_EQ(row.fault_schedule, "none");
      EXPECT_EQ(row.faults_applied, 0u);
      EXPECT_EQ(row.reconverge_us, 0u);
      continue;
    }
    if (row.fault_schedule == "none") {
      EXPECT_EQ(row.faults_applied, 0u);
      EXPECT_EQ(row.reconverge_us, 0u);
    } else {
      EXPECT_EQ(row.fault_schedule, "flap1");
      saw_faulted = true;
    }
  }
  EXPECT_TRUE(saw_faulted);
}

TEST(ScenarioCampaign, FaultScheduleIsModelIndependentPerCell) {
  // All models of one (instance, sim point, fault label, seed) cell must
  // replay the identical schedule: same faults_applied on every row.
  const spp::Instance good = spp::good_gadget();
  const spp::Instance dis = spp::disagree();
  CampaignSpec spec = scenario_spec(&good, &dis);
  spec.threads = 1;
  const CampaignResult result = run_campaign(spec);

  for (const CampaignRow& a : result.rows) {
    if (a.fault_schedule == "none" || a.scheduler != SchedulerKind::kSim) {
      continue;
    }
    for (const CampaignRow& b : result.rows) {
      if (b.scheduler == SchedulerKind::kSim && b.instance == a.instance &&
          b.fault_schedule == a.fault_schedule && b.seed == a.seed &&
          b.sim_latency_us == a.sim_latency_us && b.sim_loss == a.sim_loss) {
        EXPECT_EQ(a.faults_applied, b.faults_applied)
            << a.instance << " seed " << a.seed << ": " << a.model.name()
            << " vs " << b.model.name();
      }
    }
  }
}

TEST(ScenarioCampaign, ByteIdenticalAcrossThreadWidths) {
  const spp::Instance good = spp::good_gadget();
  const spp::Instance dis = spp::disagree();
  CampaignSpec serial_spec = scenario_spec(&good, &dis);
  serial_spec.threads = 1;
  CampaignSpec wide_spec = scenario_spec(&good, &dis);
  wide_spec.threads = 4;

  const CampaignResult serial = run_campaign(serial_spec);
  const CampaignResult wide = run_campaign(wide_spec);
  ASSERT_EQ(serial.rows.size(), wide.rows.size());
  EXPECT_EQ(strip_wall(serial.to_csv()), strip_wall(wide.to_csv()));
  ASSERT_EQ(serial.provenance.size(), wide.provenance.size());
  for (std::size_t i = 0; i < serial.provenance.size(); ++i) {
    EXPECT_EQ(serial.provenance[i].record_json,
              wide.provenance[i].record_json);
  }
}

TEST(ScenarioCampaign, CsvCarriesTheScenarioColumns) {
  const spp::Instance good = spp::good_gadget();
  CampaignSpec spec;
  spec.instances = {{"good-gadget", &good}};
  spec.models = {model::Model::parse("R1O")};
  spec.schedulers = {SchedulerKind::kRoundRobin};
  spec.seeds = 1;
  spec.threads = 1;
  const CampaignResult result = run_campaign(spec);
  const std::string csv = result.to_csv();
  const std::string header = csv.substr(0, csv.find('\n'));
  // New axes append at the end — the wall_ms-stripping CI gate and every
  // downstream CSV consumer depend on the column order staying put.
  EXPECT_NE(header.find(
                "perturb,perturb_edits,fault_schedule,faults_applied,"
                "reconverge_us"),
            std::string::npos);
  EXPECT_EQ(header.rfind("reconverge_us"),
            header.size() - std::string("reconverge_us").size());
}

}  // namespace
}  // namespace commroute::study
