// Malformed-input robustness of the JSON parser. The parser feeds on
// untrusted bytes (JSONL traces from disk, BENCH_*.json handed to the
// CLI), so every broken shape here must come back as nullopt — never a
// crash, hang, or silent acceptance — and the hardening limits (nesting
// depth, strict number syntax, raw control characters) must hold.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/json.hpp"

namespace commroute {
namespace {

TEST(JsonRobust, TruncatedDocumentsAreRejected) {
  const std::vector<std::string> cases = {
      "",
      "{",
      "[",
      "{\"a\"",
      "{\"a\":",
      "{\"a\":1",
      "{\"a\":1,",
      "[1,2",
      "[1,",
      "tru",
      "nul",
      "-",
      "{\"a\":{\"b\":1}",
  };
  for (const std::string& text : cases) {
    EXPECT_FALSE(obs::json_parse(text).has_value()) << "accepted: " << text;
  }
}

TEST(JsonRobust, BadEscapesAndUnterminatedStringsAreRejected) {
  const std::vector<std::string> cases = {
      "\"abc",          // unterminated
      "\"a\\\"",        // escape eats the closing quote
      "\"\\q\"",        // unknown escape
      "\"\\u12\"",      // \u needs four hex digits
      "\"\\u12G4\"",    // non-hex digit
      "\"\\uZZZZ\"",
      "\"\\\"",         // lone backslash-quote, never closed
      "{\"a\\u00\":1}",  // truncated escape inside a key
  };
  for (const std::string& text : cases) {
    EXPECT_FALSE(obs::json_parse(text).has_value()) << "accepted: " << text;
  }
}

TEST(JsonRobust, RawControlCharactersInStringsAreRejected) {
  for (int c = 0; c < 0x20; ++c) {
    std::string text = "\"a_b\"";
    text[2] = static_cast<char>(c);
    EXPECT_FALSE(obs::json_parse(text).has_value())
        << "accepted raw control char " << c;
  }
  // Escaped, the same characters are fine.
  EXPECT_TRUE(obs::json_parse("\"a\\nb\\u0001c\"").has_value());
}

TEST(JsonRobust, HighBytesPassThroughVerbatim) {
  // The parser does not validate UTF-8: both well-formed multibyte
  // sequences and stray >= 0x80 bytes survive untouched.
  const std::string utf8 = "\"caf\xc3\xa9\"";
  const auto parsed = obs::json_parse(utf8);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->as_string(), "caf\xc3\xa9");

  const std::string stray = std::string("\"a") + '\xff' + "b\"";
  const auto stray_parsed = obs::json_parse(stray);
  ASSERT_TRUE(stray_parsed.has_value());
  EXPECT_EQ(stray_parsed->as_string().size(), 3u);
}

TEST(JsonRobust, NonStandardNumbersAreRejected) {
  const std::vector<std::string> cases = {
      "+1", ".5", "-.5", "-", "1e", "1e+", "1.5e-", "01x", "0x10", "NaN",
      "Infinity", "-Infinity",
  };
  for (const std::string& text : cases) {
    EXPECT_FALSE(obs::json_parse(text).has_value()) << "accepted: " << text;
  }
  EXPECT_TRUE(obs::json_parse("-0.5e+10").has_value());
  EXPECT_TRUE(obs::json_parse("0").has_value());
}

TEST(JsonRobust, OverflowToInfinityIsRejected) {
  EXPECT_FALSE(obs::json_parse("1e999").has_value());
  EXPECT_FALSE(obs::json_parse("-1e999").has_value());
  EXPECT_FALSE(obs::json_parse("{\"v\":1e999}").has_value());
  // Near the edge of double range but finite: fine.
  EXPECT_TRUE(obs::json_parse("1e308").has_value());
}

TEST(JsonRobust, DeepNestingIsRejectedWithoutCrashing) {
  // Far beyond the depth limit: must return nullopt, not blow the stack.
  const std::string deep_open(10000, '[');
  EXPECT_FALSE(obs::json_parse(deep_open).has_value());

  std::string deep_balanced(10000, '[');
  deep_balanced += "1";
  deep_balanced += std::string(10000, ']');
  EXPECT_FALSE(obs::json_parse(deep_balanced).has_value());

  // Comfortably inside the limit still parses.
  std::string shallow(100, '[');
  shallow += "1";
  shallow += std::string(100, ']');
  EXPECT_TRUE(obs::json_parse(shallow).has_value());
}

TEST(JsonRobust, TrailingGarbageIsRejected) {
  const std::vector<std::string> cases = {
      "1 2", "{} x", "null,", "[1] [2]", "\"a\"\"b\"", "{}{}",
  };
  for (const std::string& text : cases) {
    EXPECT_FALSE(obs::json_parse(text).has_value()) << "accepted: " << text;
  }
  EXPECT_TRUE(obs::json_parse("  {\"a\":1}  \n").has_value());
}

TEST(JsonRobust, StructuralGarbageIsRejected) {
  const std::vector<std::string> cases = {
      "{\"a\" 1}",      // missing colon
      "{\"a\":1 \"b\":2}",  // missing comma
      "{1:2}",          // non-string key
      "[1 2]",
      "{,}",
      "[,]",
      "{\"a\":}",
  };
  for (const std::string& text : cases) {
    EXPECT_FALSE(obs::json_parse(text).has_value()) << "accepted: " << text;
  }
}

TEST(JsonRobust, RenderRoundTripsParsedDocuments) {
  const std::string text =
      "{\"type\":\"unit\",\"n\":7,\"ratio\":1.5,\"flag\":true,"
      "\"none\":null,\"list\":[1,\"two\",{\"deep\":false}],"
      "\"text\":\"a\\\"b\\nc\"}";
  const auto parsed = obs::json_parse(text);
  ASSERT_TRUE(parsed.has_value());
  const std::string rendered = obs::json_render(*parsed);

  // Rendering is stable: parse(render(v)) renders identically.
  const auto reparsed = obs::json_parse(rendered);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(obs::json_render(*reparsed), rendered);

  // Field order and values survive.
  ASSERT_TRUE(reparsed->is_object());
  EXPECT_EQ(reparsed->as_object().front().first, "type");
  EXPECT_DOUBLE_EQ(reparsed->find("ratio")->as_number(), 1.5);
  EXPECT_EQ(reparsed->find("text")->as_string(), "a\"b\nc");
  EXPECT_EQ(reparsed->find("list")->as_array().size(), 3u);
}

TEST(JsonRobust, DuplicateKeysAreKeptInOrder) {
  const auto parsed = obs::json_parse("{\"k\":1,\"k\":2}");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->as_object().size(), 2u);
  // find() returns the first occurrence.
  EXPECT_DOUBLE_EQ(parsed->find("k")->as_number(), 1.0);
}

}  // namespace
}  // namespace commroute
