#include <gtest/gtest.h>

#include "realization/machine_facts.hpp"
#include "realization/matrix.hpp"
#include "realization/paper_data.hpp"

namespace commroute::realization {
namespace {

using model::Model;

TEST(MachineFacts, ChecksOutAgainstTheChecker) {
  EXPECT_TRUE(verify_machine_facts());
}

TEST(MachineFacts, FiveUpperBoundFacts) {
  const auto& facts = machine_checked_facts();
  ASSERT_EQ(facts.size(), 5u);
  for (const Fact& f : facts) {
    EXPECT_EQ(f.realized, Model::parse("R1O"));
    EXPECT_EQ(f.kind, FactKind::kUpperBound);
    EXPECT_EQ(f.strength, Strength::kNotPreserving);
    EXPECT_FALSE(f.realizer.reliable());
  }
}

TEST(MachineFacts, ExtendedClosureResolvesMostBlankCells) {
  const RealizationTable base = RealizationTable::closure();
  const RealizationTable extended = extended_closure();
  const std::size_t before = count_unknown_cells(base);
  const std::size_t after = count_unknown_cells(extended);
  // The paper's facts leave 115 cells fully unknown; the five
  // machine-checked separations propagate through rule N1 (every model
  // that realizes R1O becomes unrealizable in the five columns) and
  // resolve 70 of them. The 45 still open all relate members of the
  // "strong" E/A family (models that cannot capture every oscillation) to
  // one another, where DISAGREE cannot separate.
  EXPECT_EQ(before, 115u);
  EXPECT_EQ(after, 45u);
  const auto in_ea_family = [](const Model& m) {
    return m.neighbors == model::NeighborMode::kEvery ||
           m.messages == model::MessageMode::kAll;
  };
  for (const Model& a : Model::all()) {
    for (const Model& b : Model::all()) {
      if (!(a == b) && extended.cell(a, b).unknown()) {
        EXPECT_TRUE(in_ea_family(a) && in_ea_family(b))
            << a.name() << "/" << b.name();
      }
    }
  }
}

TEST(MachineFacts, ExtendedClosureRefinesButNeverContradictsThePaper) {
  const RealizationTable extended = extended_closure();
  for (const Model& a : Model::all()) {
    for (const Model& b : Model::all()) {
      if (a == b) {
        continue;
      }
      const RelationBound published = paper_bound(a, b);
      const RelationBound& derived = extended.cell(a, b);
      EXPECT_TRUE(published.overlaps(derived))
          << a.name() << "/" << b.name();
      EXPECT_TRUE(published.contains(derived))
          << a.name() << "/" << b.name()
          << ": extension must refine the published interval";
    }
  }
}

TEST(MachineFacts, ResolvedColumnsBecomeNonPreserving) {
  // Spot checks: the strong reliable models' oscillation capture fails
  // in the five unreliable columns for every model that captures R1O.
  const RealizationTable extended = extended_closure();
  for (const char* col : {"UEO", "UEF", "U1A", "UMA", "UEA"}) {
    const Model b = Model::parse(col);
    for (const char* row : {"R1O", "RMO", "R1S", "RMS", "U1O", "UMS"}) {
      EXPECT_EQ(extended.cell(Model::parse(row), b).hi,
                Strength::kNotPreserving)
          << row << " in " << col;
    }
  }
}

TEST(MachineFacts, ProvenanceMentionsTheMachineCheck) {
  const RealizationTable extended = extended_closure();
  const std::string text = extended.explain(Model::parse("R1O"),
                                            Model::parse("UEA"));
  EXPECT_NE(text.find("machine-checked"), std::string::npos);
}

}  // namespace
}  // namespace commroute::realization
