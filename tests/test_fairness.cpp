#include <gtest/gtest.h>

#include "core/graph.hpp"
#include "model/fairness.hpp"
#include "support/error.hpp"

namespace commroute::model {
namespace {

TEST(Fairness, FreshMonitorIsEmpty) {
  FairnessMonitor fm(4);
  EXPECT_EQ(fm.steps(), 0u);
  EXPECT_FALSE(fm.all_channels_attempted());
  EXPECT_EQ(fm.outstanding_drops(), 0u);
  EXPECT_TRUE(fm.drop_condition_ok());
}

TEST(Fairness, TracksAttemptCoverage) {
  FairnessMonitor fm(2);
  fm.begin_step();
  fm.attempt(0);
  EXPECT_FALSE(fm.all_channels_attempted());
  fm.begin_step();
  fm.attempt(1);
  EXPECT_TRUE(fm.all_channels_attempted());
}

TEST(Fairness, MaxGapCountsTrailingSilence) {
  FairnessMonitor fm(1);
  fm.begin_step();
  fm.attempt(0);
  for (int i = 0; i < 5; ++i) {
    fm.begin_step();
  }
  EXPECT_EQ(fm.max_attempt_gap(), 5u);
  fm.attempt(0);
  EXPECT_EQ(fm.max_attempt_gap(), 5u);
}

TEST(Fairness, MaxGapTracksWorstInterval) {
  FairnessMonitor fm(2);
  // Channel 0 read at steps 1 and 5 (gap 4); channel 1 at every step.
  for (int step = 1; step <= 5; ++step) {
    fm.begin_step();
    fm.attempt(1);
    if (step == 1 || step == 5) {
      fm.attempt(0);
    }
  }
  EXPECT_EQ(fm.max_attempt_gap(), 4u);
}

TEST(Fairness, DropsClearedByDelivery) {
  FairnessMonitor fm(2);
  fm.begin_step();
  fm.attempt(0);
  fm.drop(0);
  fm.drop(0);
  EXPECT_EQ(fm.outstanding_drops(), 2u);
  EXPECT_FALSE(fm.drop_condition_ok());
  fm.begin_step();
  fm.attempt(0);
  fm.deliver(0);
  EXPECT_EQ(fm.outstanding_drops(), 0u);
  EXPECT_TRUE(fm.drop_condition_ok());
}

TEST(Fairness, DropsArePerChannel) {
  FairnessMonitor fm(2);
  fm.begin_step();
  fm.drop(0);
  fm.drop(1);
  fm.deliver(0);
  EXPECT_EQ(fm.outstanding_drops(), 1u);
}

TEST(Fairness, RejectsOutOfRangeChannel) {
  FairnessMonitor fm(1);
  EXPECT_THROW(fm.attempt(1), PreconditionError);
  EXPECT_THROW(fm.drop(1), PreconditionError);
  EXPECT_THROW(fm.deliver(1), PreconditionError);
}

TEST(Fairness, ReportNamesChannels) {
  Graph g({"a", "b"});
  g.add_edge(0, 1);
  FairnessMonitor fm(g.channel_count());
  fm.begin_step();
  fm.attempt(0);
  const std::string report = fm.report(g);
  EXPECT_NE(report.find("a->b"), std::string::npos);
  EXPECT_NE(report.find("b->a"), std::string::npos);
}

}  // namespace
}  // namespace commroute::model
