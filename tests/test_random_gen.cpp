#include <gtest/gtest.h>

#include "spp/random_gen.hpp"
#include "support/rng.hpp"

namespace commroute::spp {
namespace {

TEST(RandomGen, TreeHasOnePathPerNode) {
  Rng rng(1);
  const Instance inst = random_tree(rng, 8);
  EXPECT_EQ(inst.node_count(), 8u);
  for (NodeId v = 1; v < inst.node_count(); ++v) {
    ASSERT_EQ(inst.permitted(v).size(), 1u);
    EXPECT_EQ(inst.permitted(v)[0].source(), v);
    EXPECT_EQ(inst.permitted(v)[0].destination(), inst.destination());
  }
}

TEST(RandomGen, TreeRejectsTooFewNodes) {
  Rng rng(1);
  EXPECT_THROW(random_tree(rng, 1), PreconditionError);
}

TEST(RandomGen, ShortestRanksByLength) {
  Rng rng(2);
  const Instance inst = random_shortest(rng, {.nodes = 7});
  for (NodeId v = 1; v < inst.node_count(); ++v) {
    const auto& paths = inst.permitted(v);
    ASSERT_FALSE(paths.empty());
    for (std::size_t i = 1; i < paths.size(); ++i) {
      EXPECT_LE(paths[i - 1].size(), paths[i].size());
    }
  }
}

TEST(RandomGen, PolicyGuaranteesAPathPerNode) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const Instance inst = random_policy(rng, {.nodes = 7});
    for (NodeId v = 1; v < inst.node_count(); ++v) {
      EXPECT_FALSE(inst.permitted(v).empty());
    }
  }
}

TEST(RandomGen, RespectsPathCaps) {
  Rng rng(4);
  RandomInstanceParams params;
  params.nodes = 8;
  params.extra_edge_prob = 0.6;
  params.max_paths_per_node = 3;
  const Instance inst = random_policy(rng, params);
  for (NodeId v = 1; v < inst.node_count(); ++v) {
    EXPECT_LE(inst.permitted(v).size(), 3u);
  }
}

TEST(RandomGen, RespectsLengthCap) {
  Rng rng(5);
  RandomInstanceParams params;
  params.nodes = 8;
  params.max_path_len = 3;
  const Instance inst = random_shortest(rng, params);
  for (NodeId v = 1; v < inst.node_count(); ++v) {
    for (const Path& p : inst.permitted(v)) {
      EXPECT_LE(p.size(), 4u);  // max_path_len edges = len+1 nodes
    }
  }
}

TEST(RandomGen, DeterministicGivenSeed) {
  Rng a(99), b(99);
  const Instance ia = random_policy(a, {.nodes = 6});
  const Instance ib = random_policy(b, {.nodes = 6});
  EXPECT_EQ(ia.to_string(), ib.to_string());
}

TEST(RandomGen, InstancesPassValidation) {
  // Construction already validates; exercising many seeds is the test.
  Rng rng(6);
  for (int trial = 0; trial < 30; ++trial) {
    EXPECT_NO_THROW(random_policy(rng, {.nodes = 6}));
    EXPECT_NO_THROW(random_shortest(rng, {.nodes = 5}));
    EXPECT_NO_THROW(random_tree(rng, 5));
  }
}

}  // namespace
}  // namespace commroute::spp
