// Shared helpers for the test suite.
#pragma once

#include <string>
#include <vector>

#include "model/activation.hpp"
#include "spp/instance.hpp"
#include "trace/recording.hpp"

namespace commroute::testutil {

/// Builds a script activating the named nodes in order, each with the
/// given step shape: "REA" poll-all, "REO" read-one-from-every.
inline model::ActivationScript named_script(
    const spp::Instance& inst, const std::vector<std::string>& nodes,
    bool poll_all) {
  model::ActivationScript script;
  for (const std::string& name : nodes) {
    const NodeId v = inst.graph().node(name);
    script.push_back(poll_all ? model::poll_all_step(inst, v)
                              : model::read_every_one_step(inst, v));
  }
  return script;
}

/// Records the paper's REO execution of Ex. A.2 (t = 1..13).
inline trace::Recording record_example_a2_reo(const spp::Instance& a2) {
  return trace::record_script(
      a2,
      named_script(
          a2, {"d", "x", "a", "u", "v", "y", "a", "u", "v", "z", "a", "v",
               "u"},
          false),
      model::Model::parse("REO"));
}

/// The REO trace of Ex. A.3 (t = 1..10).
inline trace::Recording record_example_a3_reo(const spp::Instance& a3) {
  return trace::record_script(
      a3,
      named_script(a3, {"d", "b", "u", "v", "a", "u", "v", "s", "s", "s"},
                   false),
      model::Model::parse("REO"));
}

/// The REA trace of Ex. A.4 (t = 1..6).
inline trace::Recording record_example_a4_rea(const spp::Instance& a4) {
  return trace::record_script(
      a4, named_script(a4, {"d", "a", "u", "b", "u", "s"}, true),
      model::Model::parse("REA"));
}

/// The REA trace of Ex. A.5 (t = 1..8).
inline trace::Recording record_example_a5_rea(const spp::Instance& a5) {
  return trace::record_script(
      a5, named_script(a5, {"d", "b", "c", "x", "s", "a", "c", "s"}, true),
      model::Model::parse("REA"));
}

/// The R1O oscillation script for DISAGREE (Ex. A.1): a converging prelude
/// and a fair loop; returns (script, loop_from).
inline std::pair<model::ActivationScript, std::size_t>
disagree_r1o_oscillation(const spp::Instance& dis) {
  const NodeId d = dis.graph().node("d");
  const NodeId x = dis.graph().node("x");
  const NodeId y = dis.graph().node("y");
  model::ActivationScript script;
  script.push_back(model::read_one_step(dis, d, x));
  script.push_back(model::read_one_step(dis, x, d));
  script.push_back(model::read_one_step(dis, y, d));
  script.push_back(model::read_one_step(dis, x, y));
  script.push_back(model::read_one_step(dis, y, x));
  const std::size_t loop_from = script.size();
  script.push_back(model::read_one_step(dis, x, y));
  script.push_back(model::read_one_step(dis, y, x));
  script.push_back(model::read_one_step(dis, d, x));
  script.push_back(model::read_one_step(dis, d, y));
  script.push_back(model::read_one_step(dis, x, d));
  script.push_back(model::read_one_step(dis, y, d));
  return {script, loop_from};
}

}  // namespace commroute::testutil
