// Timed fault injection: schedule parsing, state effects, sim-runner
// injection, recording round trips, and causality integration.
#include <gtest/gtest.h>

#include <sstream>

#include "obs/causality.hpp"
#include "scenario/fault.hpp"
#include "sim/sim_runner.hpp"
#include "spp/gadgets.hpp"
#include "support/error.hpp"
#include "trace/recording_io.hpp"

namespace commroute::scenario {
namespace {

using model::Model;

TEST(FaultSchedule, FormatParseRoundTrip) {
  const spp::Instance inst = spp::good_gadget();
  const std::string text =
      "1200 link-down 1 2; 2600 link-up 1 2; 3000 session-reset 2 3; "
      "4000 reboot 3";
  const FaultSchedule sched = parse_fault_schedule(text, inst);
  EXPECT_EQ(sched.size(), 4u);
  EXPECT_EQ(sched.format(inst), text);
  EXPECT_EQ(sched.last_at_us(), 4000u);
}

TEST(FaultSchedule, EventsSortByTime) {
  const spp::Instance inst = spp::good_gadget();
  const FaultSchedule sched =
      parse_fault_schedule("5000 reboot 3; 100 session-reset 1 2", inst);
  EXPECT_EQ(sched.events()[0].at_us, 100u);
  EXPECT_EQ(sched.events()[1].at_us, 5000u);
}

TEST(FaultSchedule, ParseRejectsGarbage) {
  const spp::Instance inst = spp::good_gadget();
  EXPECT_THROW(parse_fault_schedule("100 melt 1 2", inst), ParseError);
  EXPECT_THROW(parse_fault_schedule("100 reboot zz", inst), ParseError);
}

TEST(FaultSchedule, SpecLabelsRoundTrip) {
  for (const char* label :
       {"none", "flap1", "reset2", "flap1+reset1+reboot1+regime1"}) {
    EXPECT_EQ(parse_fault_spec(label).label(), label);
  }
  EXPECT_THROW(parse_fault_spec("melt1"), ParseError);
}

TEST(FaultSchedule, RandomScheduleIsPureInInstanceSpecSeed) {
  const spp::Instance inst = spp::good_gadget();
  FaultScheduleSpec spec;
  spec.link_flaps = 2;
  spec.session_resets = 1;
  spec.reboots = 1;
  const FaultSchedule a = random_fault_schedule(inst, spec, 5);
  const FaultSchedule b = random_fault_schedule(inst, spec, 5);
  EXPECT_EQ(a.format(inst), b.format(inst));
  const FaultSchedule c = random_fault_schedule(inst, spec, 6);
  EXPECT_NE(a.format(inst), c.format(inst));
  // Every flap's link-up follows its link-down.
  std::size_t downs = 0, ups = 0;
  for (const FaultEvent& ev : a.events()) {
    if (ev.kind == FaultKind::kLinkDown) ++downs;
    if (ev.kind == FaultKind::kLinkUp) ++ups;
  }
  EXPECT_EQ(downs, 2u);
  EXPECT_EQ(ups, 2u);
}

sim::SimResult run_faulted(const Model& m, const spp::Instance& inst,
                           const FaultSchedule& faults,
                           sim::SimOptions extra = {}) {
  extra.model = m;
  extra.seed = 42;
  extra.faults = &faults;
  return sim::run(inst, extra);
}

TEST(FaultInjection, FaultsFireAndNetworkReconverges) {
  const spp::Instance inst = spp::good_gadget();
  const FaultSchedule faults = parse_fault_schedule(
      "9000 link-down 1 2; 11000 link-up 1 2; 20000 reboot 3", inst);
  for (const char* name : {"R1O", "UMS", "REA"}) {
    const sim::SimResult res =
        run_faulted(Model::parse(name), inst, faults);
    EXPECT_EQ(res.run.outcome, engine::Outcome::kConverged) << name;
    EXPECT_EQ(res.faults_applied, 3u) << name;
    EXPECT_EQ(res.run.faults_applied, 3u) << name;
    EXPECT_EQ(res.last_fault_us, 20000u) << name;
    // The reboot wiped pi_3, so the network must change after it.
    EXPECT_GT(res.reconverge_us(), 0u) << name;
  }
}

TEST(FaultInjection, FaultFreeRunsReportZeroReconvergence) {
  const spp::Instance inst = spp::good_gadget();
  sim::SimOptions opts;
  opts.model = Model::parse("R1O");
  opts.seed = 42;
  const sim::SimResult res = sim::run(inst, opts);
  EXPECT_EQ(res.faults_applied, 0u);
  EXPECT_EQ(res.reconverge_us(), 0u);
}

TEST(FaultInjection, ReliablePermanentPartitionIsRejected) {
  const spp::Instance inst = spp::good_gadget();
  const FaultSchedule faults =
      parse_fault_schedule("1000 link-down 1 2", inst);
  sim::SimOptions opts;
  opts.model = Model::parse("R1O");
  opts.faults = &faults;
  EXPECT_THROW(sim::run(inst, opts), PreconditionError);
  // The same schedule is fine when drops are expressible.
  opts.model = Model::parse("U1O");
  const sim::SimResult res = sim::run(inst, opts);
  EXPECT_EQ(res.faults_applied, 1u);
}

TEST(FaultInjection, RebootOfDestinationIsRejected) {
  const spp::Instance inst = spp::good_gadget();
  const FaultSchedule faults = parse_fault_schedule("1000 reboot d", inst);
  sim::SimOptions opts;
  opts.model = Model::parse("R1O");
  opts.faults = &faults;
  EXPECT_THROW(sim::run(inst, opts), PreconditionError);
}

TEST(FaultInjection, DeterministicAcrossRuns) {
  const spp::Instance inst = spp::good_gadget();
  const FaultSchedule faults = parse_fault_schedule(
      "1200 link-down 1 2; 2600 link-up 1 2; 4000 session-reset 2 3", inst);
  const sim::SimResult a = run_faulted(Model::parse("UMS"), inst, faults);
  const sim::SimResult b = run_faulted(Model::parse("UMS"), inst, faults);
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(FaultInjection, SummaryJsonRoundTripsFaultFields) {
  const spp::Instance inst = spp::good_gadget();
  const FaultSchedule faults = parse_fault_schedule(
      "1200 link-down 1 2; 2600 link-up 1 2; 4000 reboot 3", inst);
  const sim::SimResult res = run_faulted(Model::parse("R1O"), inst, faults);
  const sim::SimResult parsed = sim::SimResult::from_json(res.to_json());
  EXPECT_EQ(parsed.faults_applied, res.faults_applied);
  EXPECT_EQ(parsed.last_fault_us, res.last_fault_us);
  EXPECT_EQ(parsed.reconverge_us(), res.reconverge_us());
}

TEST(FaultInjection, FaultedRecordingReplaysDivergenceFree) {
  const spp::Instance inst = spp::good_gadget();
  const FaultSchedule faults = parse_fault_schedule(
      "9000 link-down 1 2; 11000 link-up 1 2; 20000 reboot 3; "
      "26000 session-reset 1 2",
      inst);
  sim::SimOptions opts;
  opts.flight.mode = engine::FlightRecorderOptions::Mode::kFull;
  const sim::SimResult res =
      run_faulted(Model::parse("UMS"), inst, faults, opts);
  ASSERT_TRUE(res.run.recording.has_value());
  // The reboot and the reset land in the recording as typed fault
  // entries (timed-delivery faults leave no state mark but are still
  // recorded for provenance).
  EXPECT_EQ(res.run.recording->faults.size(), 4u);

  std::istringstream in(
      trace::recording_to_jsonl(inst, *res.run.recording));
  const trace::LoadedRecording loaded = trace::load_recording_jsonl(in);
  EXPECT_EQ(loaded.doc.faults.size(), 4u);
  const trace::ReplayResult replayed = trace::replay_recording(loaded);
  EXPECT_TRUE(replayed.identical);
  EXPECT_EQ(replayed.steps_replayed, res.run.steps);
}

TEST(FaultInjection, CausalityRecordsFaultsAndFlushes) {
  const spp::Instance inst = spp::good_gadget();
  const FaultSchedule faults = parse_fault_schedule(
      "9000 session-reset 1 2; 20000 reboot 3", inst);
  sim::SimOptions opts;
  opts.causality = true;
  opts.flight.mode = engine::FlightRecorderOptions::Mode::kFull;
  const sim::SimResult res =
      run_faulted(Model::parse("UMS"), inst, faults, opts);
  ASSERT_TRUE(res.run.causality.has_value());
  const obs::CausalityStats stats = res.run.causality->stats();
  EXPECT_EQ(stats.faults, 2u);
  ASSERT_EQ(res.run.causality->faults().size(), 2u);
  EXPECT_EQ(res.run.causality->faults()[0].t_us, 9000u);

  // The offline builder (complete recording) reconstructs the same
  // fault vertices from the recorded entries.
  ASSERT_TRUE(res.run.recording.has_value());
  const obs::CausalityGraph offline =
      obs::build_causality(inst, *res.run.recording);
  EXPECT_EQ(offline.stats().faults, 2u);
  EXPECT_EQ(offline.stats().flushed_messages, stats.flushed_messages);
}

TEST(FaultInjection, RegimeShiftChangesDeliveryTiming) {
  const spp::Instance inst = spp::good_gadget();
  // Shift every link to a 10x latency regime before boot-wave replies
  // go out: every message sent after the shift now takes 10000us, so
  // the run's virtual clock must stretch well past the calm run's
  // (assignments may settle off the boot wave either way, so the clock
  // — not last_change_us — is the honest observable).
  const FaultSchedule faults = parse_fault_schedule(
      "500 regime * * dist=fixed lat=10000 jit=0 loss=0 burst=1", inst);
  sim::SimOptions base;
  base.model = Model::parse("R1O");
  base.seed = 42;
  const sim::SimResult calm = sim::run(inst, base);
  const sim::SimResult shifted =
      run_faulted(Model::parse("R1O"), inst, faults);
  EXPECT_EQ(shifted.faults_applied, 1u);
  EXPECT_EQ(shifted.run.outcome, engine::Outcome::kConverged);
  EXPECT_GT(shifted.virtual_end_us, calm.virtual_end_us + 5000);
}

TEST(FaultInjection, LossyRegimeShiftRejectedUnderReliableModels) {
  const spp::Instance inst = spp::good_gadget();
  const FaultSchedule faults = parse_fault_schedule(
      "500 regime * * dist=fixed lat=1000 jit=0 loss=0.5 burst=1", inst);
  sim::SimOptions opts;
  opts.model = Model::parse("R1O");
  opts.faults = &faults;
  EXPECT_THROW(sim::run(inst, opts), PreconditionError);
}

TEST(ApplyFault, SessionResetFlushesBothChannelsAndRho) {
  const spp::Instance inst = spp::good_gadget();
  engine::NetworkState state(inst);
  const Graph& g = inst.graph();
  const NodeId n1 = g.node("1");
  const NodeId n2 = g.node("2");
  const ChannelIdx c12 = g.channel(n1, n2);
  const ChannelIdx c21 = g.channel(n2, n1);
  state.mutable_channel(c12).push({Path({n2, g.node("d")})});
  state.set_known(c21, Path({n1, g.node("d")}));

  const FaultEvent reset = parse_fault("session-reset 1 2", inst);
  const FaultStateEffect effect = apply_fault(state, reset);
  EXPECT_TRUE(effect.state_changed);
  EXPECT_EQ(effect.flushed.size(), 2u);
  EXPECT_TRUE(state.channel(c12).empty());
  EXPECT_TRUE(state.channel(c21).empty());
  EXPECT_TRUE(state.known(c21).empty());  // rho reset to epsilon
}

TEST(ApplyFault, RebootWipesPiAndIncidentChannels) {
  const spp::Instance inst = spp::good_gadget();
  engine::NetworkState state(inst);
  const Graph& g = inst.graph();
  const NodeId n3 = g.node("3");
  const Path direct({n3, g.node("d")});
  state.set_assignment(n3, direct);

  const FaultEvent reboot = parse_fault("reboot 3", inst);
  const FaultStateEffect effect = apply_fault(state, reboot);
  EXPECT_TRUE(effect.state_changed);
  EXPECT_TRUE(state.assignment(n3).empty());
  // All of n3's in- and out-channels are flushed.
  EXPECT_EQ(effect.flushed.size(),
            g.in_channels(n3).size() + g.out_channels(n3).size());
  // Link faults touch no state.
  const FaultEvent down = parse_fault("link-down 1 2", inst);
  EXPECT_FALSE(apply_fault(state, down).state_changed);
}

}  // namespace
}  // namespace commroute::scenario
