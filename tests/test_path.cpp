#include <gtest/gtest.h>

#include <unordered_set>

#include "core/path.hpp"
#include "support/error.hpp"

namespace commroute {
namespace {

TEST(Path, EpsilonProperties) {
  const Path eps = Path::epsilon();
  EXPECT_TRUE(eps.empty());
  EXPECT_EQ(eps.size(), 0u);
  EXPECT_EQ(eps.to_string(), "(eps)");
  EXPECT_THROW(eps.source(), PreconditionError);
  EXPECT_THROW(eps.destination(), PreconditionError);
  EXPECT_THROW(eps.tail(), PreconditionError);
  EXPECT_EQ(eps.next_hop(), kNoNode);
}

TEST(Path, EndpointsAndNextHop) {
  const Path p{3, 1, 0};
  EXPECT_EQ(p.source(), 3u);
  EXPECT_EQ(p.destination(), 0u);
  EXPECT_EQ(p.next_hop(), 1u);
  EXPECT_EQ(Path{5}.next_hop(), kNoNode);
}

TEST(Path, Contains) {
  const Path p{3, 1, 0};
  EXPECT_TRUE(p.contains(1));
  EXPECT_TRUE(p.contains(3));
  EXPECT_FALSE(p.contains(2));
  EXPECT_FALSE(Path::epsilon().contains(0));
}

TEST(Path, Simplicity) {
  EXPECT_TRUE((Path{1, 2, 0}).is_simple());
  EXPECT_FALSE((Path{1, 2, 1}).is_simple());
  EXPECT_TRUE(Path::epsilon().is_simple());
  EXPECT_TRUE((Path{7}).is_simple());
}

TEST(Path, ExtendPrepends) {
  const Path p{1, 0};
  const Path q = p.extended_by(5);
  EXPECT_EQ(q, (Path{5, 1, 0}));
  EXPECT_EQ(q.source(), 5u);
  EXPECT_EQ(q.destination(), 0u);
  EXPECT_THROW(Path::epsilon().extended_by(1), PreconditionError);
}

TEST(Path, TailInvertsExtend) {
  const Path p{1, 0};
  EXPECT_EQ(p.extended_by(9).tail(), p);
  EXPECT_EQ((Path{4}).tail(), Path::epsilon());
}

TEST(Path, Suffixes) {
  const Path p{5, 1, 2, 0};
  EXPECT_TRUE(p.has_suffix(Path{2, 0}));
  EXPECT_TRUE(p.has_suffix(Path{0}));
  EXPECT_TRUE(p.has_suffix(p));
  EXPECT_TRUE(p.has_suffix(Path::epsilon()));
  EXPECT_FALSE(p.has_suffix(Path{1, 0}));
  EXPECT_FALSE((Path{0}).has_suffix(p));
}

TEST(Path, ComparisonAndHash) {
  const Path a{1, 0};
  const Path b{1, 0};
  const Path c{2, 0};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
  std::unordered_set<Path> set{a, b, c, Path::epsilon()};
  EXPECT_EQ(set.size(), 3u);
}

TEST(Path, HashDistinguishesPrefixSharing) {
  EXPECT_NE(std::hash<Path>{}(Path{1, 2}), std::hash<Path>{}(Path{1}));
  EXPECT_NE(std::hash<Path>{}(Path{1, 2}), std::hash<Path>{}(Path{2, 1}));
}

TEST(Path, ToStringUsesIndices) {
  EXPECT_EQ((Path{3, 1, 0}).to_string(), "3>1>0");
  EXPECT_EQ((Path{9}).to_string(), "9");
}

}  // namespace
}  // namespace commroute
