#include <gtest/gtest.h>

#include "support/error.hpp"
#include "checker/successors.hpp"
#include "engine/executor.hpp"
#include "spp/gadgets.hpp"

namespace commroute::checker {
namespace {

using model::Model;

class SuccessorsTest : public ::testing::Test {
 protected:
  spp::Instance inst = spp::disagree();
  engine::NetworkState init{inst};
};

TEST_F(SuccessorsTest, CountsOnInitialState) {
  // DISAGREE: 3 nodes, each with 2 in-channels, all empty.
  // R1O: one step per (node, channel) pair.
  EXPECT_EQ(enumerate_steps(init, Model::parse("R1O")).size(), 6u);
  // REO/REA: one canonical step per node.
  EXPECT_EQ(enumerate_steps(init, Model::parse("REO")).size(), 3u);
  EXPECT_EQ(enumerate_steps(init, Model::parse("REA")).size(), 3u);
  // RMS: per node, 2^2 channel subsets, one f-option each (m = 0).
  EXPECT_EQ(enumerate_steps(init, Model::parse("RMS")).size(), 12u);
}

TEST_F(SuccessorsTest, UnreliableAddsDropSubsets) {
  engine::NetworkState st(inst);
  const ChannelIdx c = inst.graph().channel(inst.graph().node("y"),
                                            inst.graph().node("x"));
  st.mutable_channel(c).push({inst.parse_path("yd"), 0});
  st.mutable_channel(c).push({Path::epsilon(), 0});
  // U1O: the 2-message channel read gains a drop variant: 6 + 1 = 7.
  EXPECT_EQ(enumerate_steps(st, Model::parse("U1O")).size(), 7u);
  // R1S: f in {0, 1, 2} for that channel: 6 + 2 = 8.
  EXPECT_EQ(enumerate_steps(st, Model::parse("R1S")).size(), 8u);
  // U1S: f in {0,1,2}; f=1 has 2 drop subsets, f=2 has 4: 1+2+4 = 7
  // options on the loaded channel, 1 on each of the 5 empty ones.
  EXPECT_EQ(enumerate_steps(st, Model::parse("U1S")).size(), 12u);
  // U1A: f = all (2 messages): 4 drop subsets; 6 - 1 + 4 = 9.
  EXPECT_EQ(enumerate_steps(st, Model::parse("U1A")).size(), 9u);
  // U1F: f in {1, 2}: 2 + 4 = 6 options; 6 - 1 + 6 = 11.
  EXPECT_EQ(enumerate_steps(st, Model::parse("U1F")).size(), 11u);
}

TEST_F(SuccessorsTest, EveryStepIsLegalAndValid) {
  engine::NetworkState st(inst);
  const ChannelIdx c = inst.graph().channel(inst.graph().node("d"),
                                            inst.graph().node("x"));
  st.mutable_channel(c).push({Path{inst.destination()}, 0});
  for (const Model& m : Model::all()) {
    for (const auto& step : enumerate_steps(st, m)) {
      std::string why;
      EXPECT_TRUE(model::step_allowed(m, inst, step, &why))
          << m.name() << ": " << why;
    }
  }
}

TEST_F(SuccessorsTest, StepsAreCanonicallyDistinct) {
  // Executing all successors from the same state never produces two
  // identical (step-spec) entries.
  for (const Model& m : Model::all()) {
    const auto steps = enumerate_steps(init, m);
    for (std::size_t i = 0; i < steps.size(); ++i) {
      for (std::size_t j = i + 1; j < steps.size(); ++j) {
        EXPECT_NE(steps[i].to_string(inst), steps[j].to_string(inst))
            << m.name();
      }
    }
  }
}

TEST_F(SuccessorsTest, CapThrowsWhenExceeded) {
  SuccessorOptions options;
  options.max_steps_per_state = 3;
  EXPECT_THROW(enumerate_steps(init, Model::parse("RMS"), options),
               PreconditionError);
}

TEST_F(SuccessorsTest, ForcedOnEmptyChannelStillAttempts) {
  // F requires f >= 1 even when the channel is empty; the canonical step
  // must exist (reading nothing).
  const auto steps = enumerate_steps(init, Model::parse("R1F"));
  EXPECT_EQ(steps.size(), 6u);
  for (const auto& step : steps) {
    ASSERT_EQ(step.reads.size(), 1u);
    ASSERT_TRUE(step.reads[0].count.has_value());
    EXPECT_GE(*step.reads[0].count, 1u);
  }
}

}  // namespace
}  // namespace commroute::checker
