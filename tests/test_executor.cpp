#include <gtest/gtest.h>

#include "engine/executor.hpp"
#include "spp/builder.hpp"
#include "spp/gadgets.hpp"

namespace commroute::engine {
namespace {

using model::make_multi_step;
using model::make_step;
using model::poll_all_step;
using model::read_one_step;
using model::ReadSpec;

class ExecutorTest : public ::testing::Test {
 protected:
  spp::Instance inst = spp::disagree();
  NodeId d = inst.graph().node("d");
  NodeId x = inst.graph().node("x");
  NodeId y = inst.graph().node("y");
  NetworkState state{inst};

  void activate_d() {
    execute_step(state, read_one_step(inst, d, x));
  }
};

TEST_F(ExecutorTest, DestinationAnnouncesOnFirstActivation) {
  const StepEffect effect = execute_step(state, read_one_step(inst, d, x));
  EXPECT_EQ(state.assignment(d), Path{d});
  ASSERT_EQ(effect.sent.size(), 2u);  // to x and to y
  for (const SentMessage& m : effect.sent) {
    EXPECT_EQ(m.message.path, Path{d});
  }
  EXPECT_EQ(state.channel(inst.graph().channel(d, x)).size(), 1u);
  EXPECT_EQ(state.channel(inst.graph().channel(d, y)).size(), 1u);
}

TEST_F(ExecutorTest, DestinationDoesNotReannounceUnchanged) {
  activate_d();
  const StepEffect effect = execute_step(state, read_one_step(inst, d, x));
  EXPECT_TRUE(effect.sent.empty());
}

TEST_F(ExecutorTest, NodeLearnsAndAnnouncesRoute) {
  activate_d();
  const StepEffect effect = execute_step(state, read_one_step(inst, x, d));
  EXPECT_EQ(state.assignment(x), inst.parse_path("xd"));
  ASSERT_EQ(effect.nodes.size(), 1u);
  EXPECT_TRUE(effect.nodes[0].changed);
  EXPECT_EQ(effect.nodes[0].selected_from, inst.graph().channel(d, x));
  ASSERT_EQ(effect.sent.size(), 2u);  // announces xd to d and y
  // rho holds the raw announced path, not the extension.
  EXPECT_EQ(state.known(inst.graph().channel(d, x)), Path{d});
}

TEST_F(ExecutorTest, NoAnnouncementWithoutChange) {
  activate_d();
  execute_step(state, read_one_step(inst, x, d));
  // Re-activating x with an empty channel changes nothing and sends
  // nothing.
  const StepEffect effect = execute_step(state, read_one_step(inst, x, d));
  EXPECT_FALSE(effect.nodes[0].changed);
  EXPECT_TRUE(effect.sent.empty());
}

TEST_F(ExecutorTest, ProcessesAtMostAvailableMessages) {
  activate_d();
  // f = 5 on a channel holding 1 message: i = min(5, 1) = 1.
  const ChannelIdx c = inst.graph().channel(d, x);
  const StepEffect effect =
      execute_step(state, make_step(x, {ReadSpec{c, 5u, {}}}));
  ASSERT_EQ(effect.reads.size(), 1u);
  EXPECT_EQ(effect.reads[0].processed, 1u);
  EXPECT_TRUE(effect.reads[0].delivered);
  EXPECT_TRUE(state.channel(c).empty());
}

TEST_F(ExecutorTest, ReadOfEmptyChannelIsANoOp) {
  const ChannelIdx c = inst.graph().channel(y, x);
  const StepEffect effect =
      execute_step(state, make_step(x, {ReadSpec{c, 1u, {}}}));
  EXPECT_EQ(effect.reads[0].processed, 0u);
  EXPECT_FALSE(effect.reads[0].delivered);
  EXPECT_TRUE(state.known(c).empty());
}

TEST_F(ExecutorTest, LastNonDroppedMessageWins) {
  // Put three announcements in (y, x), process all: rho = the last one.
  const ChannelIdx c = inst.graph().channel(y, x);
  state.mutable_channel(c).push(Message{inst.parse_path("yd"), 0});
  state.mutable_channel(c).push(Message{Path::epsilon(), 0});
  state.mutable_channel(c).push(Message{inst.parse_path("yd"), 0});
  const StepEffect effect =
      execute_step(state, make_step(x, {ReadSpec{c, std::nullopt, {}}}));
  EXPECT_EQ(effect.reads[0].processed, 3u);
  EXPECT_EQ(state.known(c), inst.parse_path("yd"));
  EXPECT_EQ(state.assignment(x), inst.parse_path("xyd"));
}

TEST_F(ExecutorTest, DropsSkipMessages) {
  const ChannelIdx c = inst.graph().channel(y, x);
  state.mutable_channel(c).push(Message{inst.parse_path("yd"), 0});
  state.mutable_channel(c).push(Message{Path::epsilon(), 0});
  // Process both but drop the second (the withdrawal): rho = yd.
  const StepEffect effect =
      execute_step(state, make_step(x, {ReadSpec{c, 2u, {2}}}));
  EXPECT_EQ(effect.reads[0].processed, 2u);
  EXPECT_EQ(effect.reads[0].dropped, 1u);
  EXPECT_TRUE(effect.reads[0].delivered);
  EXPECT_EQ(state.known(c), inst.parse_path("yd"));
  EXPECT_TRUE(state.channel(c).empty());  // dropped messages still leave
}

TEST_F(ExecutorTest, AllDroppedKeepsOldKnownRoute) {
  const ChannelIdx c = inst.graph().channel(y, x);
  state.set_known(c, inst.parse_path("yd"));
  state.mutable_channel(c).push(Message{Path::epsilon(), 0});
  const StepEffect effect =
      execute_step(state, make_step(x, {ReadSpec{c, 1u, {1}}}));
  EXPECT_EQ(effect.reads[0].dropped, 1u);
  EXPECT_FALSE(effect.reads[0].delivered);
  EXPECT_EQ(state.known(c), inst.parse_path("yd"));  // rho unchanged
}

TEST_F(ExecutorTest, WithdrawalRemovesRouteAndPropagates) {
  activate_d();
  execute_step(state, read_one_step(inst, x, d));   // x -> xd
  execute_step(state, read_one_step(inst, y, d));   // y -> yd
  execute_step(state, read_one_step(inst, x, y));   // x -> xyd
  ASSERT_EQ(state.assignment(x), inst.parse_path("xyd"));
  // y withdraws (simulate by injecting a withdrawal into (y, x)).
  state.mutable_channel(inst.graph().channel(y, x))
      .push(Message{Path::epsilon(), 0});
  const StepEffect effect = execute_step(state, read_one_step(inst, x, y));
  EXPECT_EQ(state.assignment(x), inst.parse_path("xd"));
  ASSERT_FALSE(effect.sent.empty());
  EXPECT_EQ(effect.sent[0].message.path, inst.parse_path("xd"));
}

TEST_F(ExecutorTest, LosingAllRoutesAnnouncesWithdrawal) {
  activate_d();
  execute_step(state, read_one_step(inst, x, d));
  // Pretend d withdraws.
  state.mutable_channel(inst.graph().channel(d, x))
      .push(Message{Path::epsilon(), 0});
  const StepEffect effect = execute_step(state, read_one_step(inst, x, d));
  EXPECT_TRUE(state.assignment(x).empty());
  ASSERT_EQ(effect.sent.size(), 2u);
  for (const SentMessage& m : effect.sent) {
    EXPECT_TRUE(m.message.path.empty());
  }
}

TEST_F(ExecutorTest, SelectionSkipsLoopingAnnouncements) {
  // y announces yxd; x must not extend it (contains x).
  const ChannelIdx c = inst.graph().channel(y, x);
  state.mutable_channel(c).push(Message{inst.parse_path("yxd"), 0});
  execute_step(state, make_step(x, {ReadSpec{c, 1u, {}}}));
  EXPECT_TRUE(state.assignment(x).empty());
}

TEST_F(ExecutorTest, SelectionPicksMostPreferredAcrossChannels) {
  activate_d();
  state.mutable_channel(inst.graph().channel(y, x))
      .push(Message{inst.parse_path("yd"), 0});
  const StepEffect effect = execute_step(state, poll_all_step(inst, x));
  // Both xd and xyd available: xyd has rank 0.
  EXPECT_EQ(state.assignment(x), inst.parse_path("xyd"));
  EXPECT_EQ(effect.nodes[0].selected_from, inst.graph().channel(y, x));
}

TEST_F(ExecutorTest, MultiNodeStepReadsBeforeAnnouncements) {
  activate_d();
  // x and y update simultaneously, each polling d's channel: neither can
  // see the other's same-step announcement.
  const StepEffect effect = execute_step(
      state,
      make_multi_step({x, y},
                      {ReadSpec{inst.graph().channel(d, x), 1u, {}},
                       ReadSpec{inst.graph().channel(d, y), 1u, {}}}));
  EXPECT_EQ(state.assignment(x), inst.parse_path("xd"));
  EXPECT_EQ(state.assignment(y), inst.parse_path("yd"));
  EXPECT_EQ(effect.nodes.size(), 2u);
  // Each announced after selecting; the cross announcements are now
  // queued but were not visible during the step.
  EXPECT_EQ(state.channel(inst.graph().channel(x, y)).size(), 1u);
  EXPECT_EQ(state.channel(inst.graph().channel(y, x)).size(), 1u);
}

TEST_F(ExecutorTest, EffectReportsOldAndNewAssignments) {
  activate_d();
  const StepEffect effect = execute_step(state, read_one_step(inst, x, d));
  ASSERT_EQ(effect.nodes.size(), 1u);
  EXPECT_TRUE(effect.nodes[0].old_assignment.empty());
  EXPECT_EQ(effect.nodes[0].new_assignment, inst.parse_path("xd"));
}

TEST_F(ExecutorTest, EpsilonSelectionReportsNoChannel) {
  const StepEffect effect =
      execute_step(state, read_one_step(inst, x, d));
  EXPECT_EQ(effect.nodes[0].selected_from, kNoChannel);
}

}  // namespace
}  // namespace commroute::engine
