// Adversarial robustness search: a stable gadget is turned into an
// oscillating one by a minimal ranking perturbation, with a witness.
#include <gtest/gtest.h>

#include "checker/explorer.hpp"
#include "scenario/search.hpp"
#include "spp/gadgets.hpp"
#include "support/error.hpp"

namespace commroute::scenario {
namespace {

using model::Model;

TEST(BreakSearch, RequiresAStableBase) {
  BreakSearchOptions opts;
  EXPECT_THROW(
      find_breaking_perturbation(spp::bad_gadget(), Model::parse("R1O"),
                                 opts),
      PreconditionError);
}

TEST(BreakSearch, TurnsGoodGadgetIntoAnOscillator) {
  // GOOD-GADGET's three tie-breaks are exactly what separates it from
  // BAD-GADGET; breaking it needs all three flipped at once, which the
  // count-3 family provides. The shrink pass must then certify every
  // edit as necessary.
  const spp::Instance base = spp::good_gadget();
  const Model m = Model::parse("R1O");
  BreakSearchOptions opts;
  opts.specs.push_back(parse_perturb_spec("tiebreak:1"));
  opts.specs.push_back(parse_perturb_spec("tiebreak:2"));
  opts.specs.push_back(parse_perturb_spec("tiebreak:3"));
  opts.explore.max_states = 200000;

  const BreakSearchResult found = find_breaking_perturbation(base, m, opts);
  ASSERT_TRUE(found.found);
  EXPECT_EQ(found.record.kind, PerturbKind::kTieBreakFlip);
  EXPECT_EQ(found.record.edits.size(), 3u);
  ASSERT_TRUE(found.instance.has_value());
  EXPECT_FALSE(found.witness_cycle.empty());
  EXPECT_GT(found.witness_scc_size, 0u);

  // The returned instance really oscillates, and the edits really
  // reproduce it from the base.
  checker::ExploreOptions probe;
  probe.max_states = 200000;
  EXPECT_TRUE(checker::explore(*found.instance, m, probe).oscillation_found);
  std::size_t applied = 0;
  const spp::Instance rebuilt =
      apply_edits(base, found.record.edits, &applied);
  EXPECT_EQ(applied, 3u);
  EXPECT_TRUE(checker::explore(rebuilt, m, probe).oscillation_found);

  // Local minimality: dropping any single edit restores convergence.
  for (std::size_t i = 0; i < found.record.edits.size(); ++i) {
    std::vector<PerturbEdit> subset = found.record.edits;
    subset.erase(subset.begin() + static_cast<std::ptrdiff_t>(i));
    const spp::Instance weaker = apply_edits(base, subset);
    EXPECT_FALSE(checker::explore(weaker, m, probe).oscillation_found)
        << "edit " << i << " was not necessary";
  }
}

TEST(BreakSearch, DeterministicAcrossCalls) {
  const spp::Instance base = spp::good_gadget();
  BreakSearchOptions opts;
  opts.specs.push_back(parse_perturb_spec("tiebreak:1"));
  opts.specs.push_back(parse_perturb_spec("tiebreak:2"));
  opts.specs.push_back(parse_perturb_spec("tiebreak:3"));
  opts.explore.max_states = 200000;
  const BreakSearchResult a =
      find_breaking_perturbation(base, Model::parse("R1O"), opts);
  const BreakSearchResult b =
      find_breaking_perturbation(base, Model::parse("R1O"), opts);
  ASSERT_TRUE(a.found);
  ASSERT_TRUE(b.found);
  EXPECT_EQ(a.explorations, b.explorations);
  EXPECT_EQ(a.record.to_json(base), b.record.to_json(base));
}

TEST(BreakSearch, ReportsNotFoundWhenSweepStaysConvergent) {
  // Deleting paths can never manufacture a dispute wheel in GOOD-GADGET
  // (oscillation needs reordered preferences, not fewer choices).
  const spp::Instance base = spp::good_gadget();
  BreakSearchOptions opts;
  opts.specs.push_back(parse_perturb_spec("delete:1"));
  opts.seeds_per_spec = 4;
  opts.explore.max_states = 200000;
  const BreakSearchResult found =
      find_breaking_perturbation(base, Model::parse("R1O"), opts);
  EXPECT_FALSE(found.found);
  EXPECT_FALSE(found.instance.has_value());
  EXPECT_GT(found.explorations, 1u);  // base probe + attempts
}

}  // namespace
}  // namespace commroute::scenario
