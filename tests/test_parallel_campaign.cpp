// Parallel campaign determinism: any thread count must produce the
// same rows in the same order, byte-identical CSV/JSON once the (only
// nondeterministic) wall-clock fields are normalized, the campaign_row
// event stream in enumeration order, and identical merged metric
// aggregates.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "spp/gadgets.hpp"
#include "study/campaign.hpp"

namespace commroute::study {
namespace {

using model::Model;

CampaignSpec sweep_spec(const spp::Instance& bad, const spp::Instance& good,
                        std::size_t threads) {
  CampaignSpec spec;
  spec.instances = {{"BAD-GADGET", &bad}, {"GOOD", &good}};
  spec.models = Model::all();
  spec.schedulers = {SchedulerKind::kRoundRobin, SchedulerKind::kRandomFair,
                     SchedulerKind::kSynchronous};
  spec.seeds = 2;
  spec.max_steps = 400;
  spec.threads = threads;
  return spec;
}

/// Wall time is the one legitimately nondeterministic column; zero it
/// so the byte-comparison below checks everything else.
void normalize(CampaignResult& result) {
  for (CampaignRow& row : result.rows) {
    row.wall_ms = 0.0;
  }
}

TEST(ParallelCampaign, ThreadCountDoesNotChangeCsvOrJsonBytes) {
  const spp::Instance bad = spp::bad_gadget();
  const spp::Instance good = spp::good_gadget();

  CampaignResult serial = run_campaign(sweep_spec(bad, good, 1));
  CampaignResult parallel = run_campaign(sweep_spec(bad, good, 8));

  ASSERT_EQ(serial.rows.size(), parallel.rows.size());
  ASSERT_GT(serial.rows.size(), 100u);  // a real sweep, not a toy
  normalize(serial);
  normalize(parallel);
  EXPECT_EQ(serial.to_csv(), parallel.to_csv());
  EXPECT_EQ(serial.to_json(), parallel.to_json());
}

TEST(ParallelCampaign, RowEventsArriveInEnumerationOrder) {
  const spp::Instance bad = spp::bad_gadget();
  const spp::Instance good = spp::good_gadget();

  obs::MemorySink serial_sink;
  CampaignSpec serial_spec = sweep_spec(bad, good, 1);
  serial_spec.obs.sink = &serial_sink;
  const CampaignResult serial = run_campaign(serial_spec);

  obs::MemorySink parallel_sink;
  CampaignSpec parallel_spec = sweep_spec(bad, good, 8);
  parallel_spec.obs.sink = &parallel_sink;
  run_campaign(parallel_spec);

  ASSERT_EQ(serial_sink.lines().size(), parallel_sink.lines().size());
  ASSERT_EQ(serial_sink.lines().size(), serial.rows.size() + 1);  // + summary
  for (std::size_t i = 0; i < serial.rows.size(); ++i) {
    const auto serial_ev = obs::json_parse(serial_sink.lines()[i]);
    const auto parallel_ev = obs::json_parse(parallel_sink.lines()[i]);
    ASSERT_TRUE(serial_ev.has_value() && parallel_ev.has_value());
    const obs::JsonValue* s = serial_ev->find("row");
    const obs::JsonValue* p = parallel_ev->find("row");
    ASSERT_NE(s, nullptr);
    ASSERT_NE(p, nullptr);
    for (const char* key : {"instance", "model", "scheduler", "outcome"}) {
      EXPECT_EQ(s->find(key)->as_string(), p->find(key)->as_string())
          << "event " << i << " key " << key;
    }
    EXPECT_DOUBLE_EQ(s->find("seed")->as_number(),
                     p->find("seed")->as_number())
        << "event " << i;
    EXPECT_DOUBLE_EQ(s->find("steps")->as_number(),
                     p->find("steps")->as_number())
        << "event " << i;
  }
}

TEST(ParallelCampaign, MergedMetricAggregatesMatchSerial) {
  const spp::Instance bad = spp::bad_gadget();
  const spp::Instance good = spp::good_gadget();

  obs::Registry serial_metrics;
  CampaignSpec serial_spec = sweep_spec(bad, good, 1);
  serial_spec.obs.metrics = &serial_metrics;
  run_campaign(serial_spec);

  obs::Registry parallel_metrics;
  CampaignSpec parallel_spec = sweep_spec(bad, good, 8);
  parallel_spec.obs.metrics = &parallel_metrics;
  run_campaign(parallel_spec);

  // Everything except wall-clock counters/histograms is deterministic.
  for (const char* name :
       {"campaign.rows", "campaign.steps", "engine.runs", "engine.steps",
        "engine.messages_sent", "engine.messages_dropped"}) {
    EXPECT_EQ(serial_metrics.counter(name).value(),
              parallel_metrics.counter(name).value())
        << name;
  }
  EXPECT_GT(serial_metrics.counter("campaign.rows").value(), 100u);
  EXPECT_EQ(serial_metrics.gauge("engine.max_channel_occupancy").value(),
            parallel_metrics.gauge("engine.max_channel_occupancy").value());
  // The steps histogram is time-independent; bucket counts must agree.
  const obs::Histogram& hs = serial_metrics.histogram("engine.run_steps", {});
  const obs::Histogram& hp =
      parallel_metrics.histogram("engine.run_steps", {});
  EXPECT_EQ(hs.count(), hp.count());
  EXPECT_EQ(hs.sum(), hp.sum());
  EXPECT_EQ(hs.bucket_counts(), hp.bucket_counts());
}

TEST(ParallelCampaign, SpanShardsMergeIntoTheCampaignCollector) {
  const spp::Instance good = spp::good_gadget();
  CampaignSpec spec;
  spec.instances = {{"GOOD", &good}};
  spec.models = {Model::parse("RMS"), Model::parse("REA")};
  spec.schedulers = {SchedulerKind::kRoundRobin, SchedulerKind::kRandomFair};
  spec.seeds = 3;
  spec.threads = 4;
  obs::SpanCollector spans;
  spec.obs.spans = &spans;
  const CampaignResult result = run_campaign(spec);

  std::size_t row_spans = 0, run_spans = 0;
  for (const obs::SpanRecord& rec : spans.snapshot()) {
    row_spans += rec.name == "campaign.row";
    run_spans += rec.name == "engine.run";
  }
  EXPECT_EQ(row_spans, result.rows.size());
  EXPECT_EQ(run_spans, result.rows.size());
  // Merged ids must stay unique (the offsets worked).
  std::vector<std::uint32_t> ids;
  for (const obs::SpanRecord& rec : spans.snapshot()) {
    ids.push_back(rec.id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(ParallelCampaign, TelemetrySamplerNeverPerturbsTheEventStream) {
  // The resource sampler writes RSS and wall-clock values — but only to
  // its own sink. With it attached, CSV/JSON and the campaign event
  // stream must stay byte-identical across thread widths.
  const spp::Instance bad = spp::bad_gadget();
  const spp::Instance good = spp::good_gadget();

  obs::MemorySink serial_events, serial_telemetry;
  CampaignSpec serial_spec = sweep_spec(bad, good, 1);
  serial_spec.obs.sink = &serial_events;
  serial_spec.telemetry_sink = &serial_telemetry;
  serial_spec.telemetry_interval_ms = 10;
  CampaignResult serial = run_campaign(serial_spec);

  obs::MemorySink parallel_events, parallel_telemetry;
  CampaignSpec parallel_spec = sweep_spec(bad, good, 8);
  parallel_spec.obs.sink = &parallel_events;
  parallel_spec.telemetry_sink = &parallel_telemetry;
  parallel_spec.telemetry_interval_ms = 10;
  CampaignResult parallel = run_campaign(parallel_spec);

  normalize(serial);
  normalize(parallel);
  EXPECT_EQ(serial.to_csv(), parallel.to_csv());
  EXPECT_EQ(serial.to_json(), parallel.to_json());
  EXPECT_EQ(serial_events.lines().size(), parallel_events.lines().size());

  // Both runs sampled: at least the start + final snapshots landed in
  // the dedicated sinks, and never in the campaign stream.
  EXPECT_GE(serial_telemetry.lines().size(), 2u);
  EXPECT_GE(parallel_telemetry.lines().size(), 2u);
  for (const std::string& line : serial_events.lines()) {
    EXPECT_EQ(line.find("telemetry_snapshot"), std::string::npos);
    EXPECT_EQ(line.find("pool_summary"), std::string::npos);
  }

  // The parallel run's telemetry carries a pool_summary (the sweep runs
  // as drain tasks — one per pool worker beyond the calling thread).
  bool saw_pool_summary = false;
  for (const std::string& line : parallel_telemetry.lines()) {
    const auto event = obs::json_parse(line);
    ASSERT_TRUE(event.has_value());
    const std::string type = event->find("type")->as_string();
    if (type == "pool_summary") {
      saw_pool_summary = true;
      EXPECT_EQ(event->find("workers")->as_number(), 8.0);
      EXPECT_GE(event->find("tasks_executed")->as_number(), 1.0);
      EXPECT_LE(event->find("tasks_executed")->as_number(), 8.0);
      EXPECT_NE(event->find("per_worker"), nullptr);
    } else if (type == "progress_snapshot") {
      // Campaign row progress rides the telemetry side channel too.
      EXPECT_NE(event->find("fraction"), nullptr);
      EXPECT_EQ(event->find("name")->as_string(), "campaign.rows");
    } else {
      EXPECT_EQ(type, "telemetry_snapshot");
      EXPECT_NE(event->find("pool.queue_depth"), nullptr);
    }
  }
  EXPECT_TRUE(saw_pool_summary);
}

TEST(ParallelCampaign, AutoThreadCountMatchesSerialBytes) {
  const spp::Instance good = spp::good_gadget();
  CampaignSpec auto_spec;
  auto_spec.instances = {{"GOOD", &good}};
  auto_spec.models = {Model::parse("UMS")};
  auto_spec.schedulers = {SchedulerKind::kRandomFair};
  auto_spec.seeds = 4;
  auto_spec.threads = 0;  // hardware_concurrency
  CampaignResult auto_result = run_campaign(auto_spec);

  CampaignSpec serial_spec = auto_spec;
  serial_spec.threads = 1;
  CampaignResult serial_result = run_campaign(serial_spec);

  normalize(auto_result);
  normalize(serial_result);
  EXPECT_EQ(auto_result.to_csv(), serial_result.to_csv());
}

}  // namespace
}  // namespace commroute::study
