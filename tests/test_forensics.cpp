// Convergence forensics: route-flap timelines, oscillation-cycle
// extraction on the collapsed pi-sequence, and channel-occupancy
// reconstruction — exercised on the paper's Appendix-A gadgets.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "engine/runner.hpp"
#include "obs/causality.hpp"
#include "obs/forensics.hpp"
#include "spp/gadgets.hpp"
#include "trace/recording_io.hpp"

namespace commroute {
namespace {

using model::Model;

engine::RunResult recorded_run(const spp::Instance& instance,
                               const std::string& model_name) {
  const Model m = Model::parse(model_name);
  engine::RoundRobinScheduler sched(m, instance);
  engine::RunOptions options;
  options.enforce_model = m;
  options.flight.mode = engine::FlightRecorderOptions::Mode::kFull;
  engine::RunResult result = engine::run(instance, sched, options);
  EXPECT_TRUE(result.recording.has_value());
  return result;
}

TEST(Forensics, FlapTimelinesOnBadGadget) {
  const spp::Instance bad = spp::bad_gadget();
  const engine::RunResult run = recorded_run(bad, "R1O");
  ASSERT_EQ(run.outcome, engine::Outcome::kOscillating);
  const obs::FlapReport report =
      obs::flap_timelines(bad, *run.recording);

  EXPECT_EQ(report.steps, run.steps);
  EXPECT_EQ(report.first_step, 1u);
  EXPECT_EQ(report.nodes.size(), bad.node_count());
  // Changes equal the trace's own change count, and the report is
  // sorted most-flappy first.
  EXPECT_EQ(report.total_changes, run.trace.change_count());
  EXPECT_TRUE(std::is_sorted(
      report.nodes.begin(), report.nodes.end(),
      [](const obs::NodeFlapTimeline& a, const obs::NodeFlapTimeline& b) {
        return a.changes > b.changes;
      }));
  for (const obs::NodeFlapTimeline& node : report.nodes) {
    if (node.name == "d") {
      // The destination never changes its (trivial) route.
      EXPECT_EQ(node.changes, 0u);
      EXPECT_EQ(node.distinct_paths, 1u);
    } else {
      // Every BAD GADGET rim node keeps flapping between its two
      // permitted paths (plus the initial epsilon).
      EXPECT_GE(node.changes, 2u);
      EXPECT_EQ(node.distinct_paths, 3u);
      EXPECT_GE(node.last_change_step, node.first_change_step);
      EXPECT_LE(node.last_change_step, run.steps);
    }
  }
}

TEST(Forensics, ExtractCycleFindsTheBadGadgetOscillation) {
  const spp::Instance bad = spp::bad_gadget();
  const engine::RunResult run = recorded_run(bad, "R1O");
  ASSERT_EQ(run.outcome, engine::Outcome::kOscillating);
  const obs::OscillationCycle cycle = obs::extract_cycle(*run.recording);

  ASSERT_TRUE(cycle.found);
  EXPECT_GE(cycle.period, 2u);
  EXPECT_EQ(cycle.cycle.size(), cycle.period);
  EXPECT_EQ(cycle.witness_steps.size(), cycle.period);
  EXPECT_EQ(cycle.cycle_start_step, cycle.witness_steps.front());
  EXPECT_TRUE(std::is_sorted(cycle.witness_steps.begin(),
                             cycle.witness_steps.end()));
  // A minimal cycle visits each assignment exactly once.
  for (std::size_t i = 0; i < cycle.cycle.size(); ++i) {
    for (std::size_t j = i + 1; j < cycle.cycle.size(); ++j) {
      EXPECT_NE(cycle.cycle[i], cycle.cycle[j]);
    }
  }
}

TEST(Forensics, NoCycleInAMonotoneConvergingRun) {
  const spp::Instance good = spp::good_gadget();
  const engine::RunResult run = recorded_run(good, "RMS");
  ASSERT_EQ(run.outcome, engine::Outcome::kConverged);
  const obs::OscillationCycle cycle = obs::extract_cycle(*run.recording);
  EXPECT_FALSE(cycle.found);
  EXPECT_EQ(cycle.period, 0u);
  EXPECT_GE(cycle.collapsed_states, 2u);
}

TEST(Forensics, ChannelOccupancyMatchesRunAggregates) {
  const spp::Instance bad = spp::bad_gadget();
  const engine::RunResult run = recorded_run(bad, "R1O");
  const std::vector<obs::ChannelOccupancy> channels =
      obs::channel_occupancy(bad, *run.recording);

  ASSERT_EQ(channels.size(), bad.graph().channel_count());
  std::uint64_t sent = 0, dropped = 0;
  std::size_t peak = 0;
  for (const obs::ChannelOccupancy& ch : channels) {
    EXPECT_EQ(ch.series.size(), run.steps);
    sent += ch.sent;
    dropped += ch.dropped;
    peak = std::max(peak, ch.peak);
  }
  EXPECT_EQ(sent, run.messages_sent);
  EXPECT_EQ(dropped, run.messages_dropped);
  EXPECT_EQ(peak, run.max_channel_occupancy);
}

TEST(Forensics, ChannelOccupancyRequiresIoSummaries) {
  const spp::Instance bad = spp::bad_gadget();
  const engine::RunResult run = recorded_run(bad, "R1O");
  trace::RecordingDoc stripped = *run.recording;
  stripped.io.clear();
  EXPECT_THROW(obs::channel_occupancy(bad, stripped), PreconditionError);
}

TEST(Forensics, RingWindowSupportsForensicsAndCausality) {
  // A ring-buffer window serialized and reloaded keeps enough structure
  // for every offline analysis: flap timelines and occupancy over the
  // window, and a causality DAG that reports its own truncation instead
  // of failing or fabricating provenance.
  const spp::Instance bad = spp::bad_gadget();
  const Model m = Model::parse("R1O");
  engine::RoundRobinScheduler sched(m, bad);
  engine::RunOptions options;
  options.enforce_model = m;
  options.flight.mode = engine::FlightRecorderOptions::Mode::kRing;
  options.flight.ring_capacity = 16;
  const engine::RunResult run = engine::run(bad, sched, options);
  ASSERT_TRUE(run.recording.has_value());
  ASSERT_GT(run.recording->meta.first_step, 1u);

  std::istringstream jsonl(trace::recording_to_jsonl(bad, *run.recording));
  const trace::LoadedRecording loaded =
      trace::load_recording_jsonl(jsonl);
  EXPECT_FALSE(loaded.doc.complete());
  EXPECT_EQ(loaded.doc.meta.first_step, run.recording->meta.first_step);
  EXPECT_EQ(loaded.doc.steps.size(), 16u);

  const obs::FlapReport flaps =
      obs::flap_timelines(loaded.instance, loaded.doc);
  EXPECT_EQ(flaps.steps, 16u);
  EXPECT_EQ(flaps.first_step, loaded.doc.meta.first_step);

  const std::vector<obs::ChannelOccupancy> channels =
      obs::channel_occupancy(loaded.instance, loaded.doc);
  EXPECT_EQ(channels.size(), loaded.instance.graph().channel_count());

  const obs::CausalityGraph graph =
      obs::build_causality(loaded.instance, loaded.doc);
  EXPECT_TRUE(graph.truncated());
  EXPECT_TRUE(graph.stats().truncated);
  EXPECT_EQ(graph.first_step(), loaded.doc.meta.first_step);
  EXPECT_EQ(graph.activations().size(), 16u);
  // In-flight messages at the window edge are reported, not invented.
  EXPECT_GT(graph.unknown_origin_messages(), 0u);
  EXPECT_GT(graph.critical_path_len(), 0u);
}

}  // namespace
}  // namespace commroute
