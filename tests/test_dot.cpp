#include <gtest/gtest.h>

#include <algorithm>

#include "engine/executor.hpp"
#include "spp/dot.hpp"
#include "spp/gadgets.hpp"

namespace commroute::spp {
namespace {

TEST(Dot, InstanceExportListsNodesAndEdges) {
  const Instance inst = disagree();
  const std::string dot = to_dot(inst);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"d\" [shape=doublecircle]"), std::string::npos);
  EXPECT_NE(dot.find("\"x\""), std::string::npos);
  EXPECT_NE(dot.find("\"y\""), std::string::npos);
  // Preferences appear in labels.
  EXPECT_NE(dot.find("xyd > xd"), std::string::npos);
  // Each undirected edge rendered once, lower node index first
  // (d has index 0 as the builder's first node).
  EXPECT_NE(dot.find("\"d\" -> \"x\" [dir=none"), std::string::npos);
  EXPECT_EQ(dot.find("\"x\" -> \"d\""), std::string::npos);
  EXPECT_NE(dot.find("\"x\" -> \"y\" [dir=none"), std::string::npos);
}

TEST(Dot, StateExportShowsChosenRoutesAndQueues) {
  const Instance inst = disagree();
  engine::NetworkState state(inst);
  const NodeId d = inst.graph().node("d");
  const NodeId x = inst.graph().node("x");
  engine::execute_step(state, model::read_one_step(inst, d, x));
  engine::execute_step(state, model::read_one_step(inst, x, d));
  const std::string dot = to_dot(inst, state);
  // x's chosen route xd is highlighted...
  EXPECT_NE(dot.find("label=\"xd\""), std::string::npos);
  // ... and x's announcement still queued toward y appears dashed.
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(dot.find("[xd]"), std::string::npos);
}

TEST(Dot, EmptyStateHasNoHighlights) {
  const Instance inst = disagree();
  const engine::NetworkState state(inst);
  const std::string dot = to_dot(inst, state);
  EXPECT_EQ(dot.find("style=dashed"), std::string::npos);
  EXPECT_EQ(dot.find("penwidth=2"), std::string::npos);
}

TEST(Dot, BalancedBraces) {
  const Instance inst = example_a2();
  const std::string dot = to_dot(inst);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

}  // namespace
}  // namespace commroute::spp
