// Span tracing semantics: RAII nesting, attributes, move/disabled/
// out-of-order behavior, thread safety, the Chrome trace-event export
// (every slice must carry name/ph/ts/dur/pid/tid — the acceptance
// criterion for `commroute-obs convert`), and the span hierarchies the
// instrumented hot loops actually produce.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "checker/explorer.hpp"
#include "engine/runner.hpp"
#include "obs/analysis.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/obs.hpp"
#include "spp/gadgets.hpp"
#include "study/campaign.hpp"

namespace commroute {
namespace {

using model::Model;

obs::JsonValue parse_or_die(const std::string& text) {
  const auto parsed = obs::json_parse(text);
  EXPECT_TRUE(parsed.has_value()) << "invalid JSON: " << text;
  return parsed.value_or(obs::JsonValue{});
}

const obs::SpanRecord* find_span(const std::vector<obs::SpanRecord>& records,
                                 const std::string& name) {
  for (const obs::SpanRecord& rec : records) {
    if (rec.name == name) {
      return &rec;
    }
  }
  return nullptr;
}

std::size_t count_spans(const std::vector<obs::SpanRecord>& records,
                        const std::string& name) {
  return static_cast<std::size_t>(
      std::count_if(records.begin(), records.end(),
                    [&](const obs::SpanRecord& r) { return r.name == name; }));
}

TEST(Span, NestsUnderInnermostOpenSpanOnSameThread) {
  obs::SpanCollector collector;
  {
    obs::Span outer = collector.begin("outer");
    {
      obs::Span inner = collector.begin("inner");
      obs::Span leaf = collector.begin("leaf");
    }
    obs::Span sibling = collector.begin("sibling");
  }
  const auto records = collector.snapshot();
  ASSERT_EQ(records.size(), 4u);

  const obs::SpanRecord* outer = find_span(records, "outer");
  const obs::SpanRecord* inner = find_span(records, "inner");
  const obs::SpanRecord* leaf = find_span(records, "leaf");
  const obs::SpanRecord* sibling = find_span(records, "sibling");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(leaf, nullptr);
  ASSERT_NE(sibling, nullptr);

  EXPECT_EQ(outer->parent, 0u);
  EXPECT_EQ(inner->parent, outer->id);
  EXPECT_EQ(leaf->parent, inner->id);
  EXPECT_EQ(sibling->parent, outer->id);  // inner already closed
  EXPECT_EQ(outer->tid, inner->tid);

  // Ids are unique and records land in finish order (leaf-first).
  EXPECT_EQ(records.front().name, "leaf");
  EXPECT_EQ(records.back().name, "outer");
  EXPECT_GE(outer->dur_us, inner->dur_us);
}

TEST(Span, AttributesRenderAsOneJsonObject) {
  obs::SpanCollector collector;
  {
    obs::Span span = collector.begin("work");
    span.attr("node", std::uint64_t{3})
        .attr("label", "a\"b")
        .attr("ok", true);
  }
  const auto records = collector.snapshot();
  ASSERT_EQ(records.size(), 1u);
  const auto args = parse_or_die(records[0].args_json);
  ASSERT_TRUE(args.is_object());
  EXPECT_DOUBLE_EQ(args.find("node")->as_number(), 3.0);
  EXPECT_EQ(args.find("label")->as_string(), "a\"b");
  EXPECT_TRUE(args.find("ok")->as_bool());
}

TEST(Span, DefaultConstructedIsADisabledNoop) {
  obs::Span span;
  EXPECT_FALSE(span.enabled());
  span.attr("ignored", 1);
  EXPECT_EQ(span.elapsed_us(), 0u);
  span.finish();  // must not crash
  EXPECT_EQ(obs::begin_span(nullptr, "x").enabled(), false);
}

TEST(Span, InstrumentationWithoutCollectorHandsOutDisabledSpans) {
  obs::Instrumentation inst;
  EXPECT_FALSE(inst.span("x").enabled());
  EXPECT_EQ(inst.histogram("h", {1, 2}), nullptr);

  obs::SpanCollector collector;
  inst.spans = &collector;
  EXPECT_TRUE(inst.attached());
  { obs::Span span = inst.span("x"); }
  EXPECT_EQ(collector.size(), 1u);
}

TEST(Span, MoveTransfersOwnershipWithoutDoubleRecording) {
  obs::SpanCollector collector;
  {
    obs::Span a = collector.begin("moved");
    obs::Span b = std::move(a);
    a.finish();  // moved-from: no-op
    EXPECT_TRUE(b.enabled());
  }
  EXPECT_EQ(collector.size(), 1u);

  // Move-assign finishes the target's old span first.
  {
    obs::Span target = collector.begin("first");
    target = collector.begin("second");
  }
  const auto records = collector.snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_NE(find_span(records, "first"), nullptr);
  EXPECT_NE(find_span(records, "second"), nullptr);
}

TEST(Span, OutOfOrderFinishStillRecordsBoth) {
  obs::SpanCollector collector;
  obs::Span a = collector.begin("a");
  obs::Span b = collector.begin("b");
  a.finish();  // b still open
  b.finish();
  const auto records = collector.snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(find_span(records, "b")->parent, find_span(records, "a")->id);
}

TEST(Span, FinishIsIdempotent) {
  obs::SpanCollector collector;
  obs::Span span = collector.begin("once");
  span.finish();
  span.finish();
  EXPECT_EQ(collector.size(), 1u);
}

TEST(Span, ThreadsGetDistinctTidsAndIndependentNesting) {
  obs::SpanCollector collector;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&collector] {
      obs::Span outer = collector.begin("thread.outer");
      obs::Span inner = collector.begin("thread.inner");
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const auto records = collector.snapshot();
  ASSERT_EQ(records.size(), 2u * kThreads);

  std::vector<std::uint32_t> tids;
  for (const obs::SpanRecord& rec : records) {
    if (rec.name == "thread.outer") {
      EXPECT_EQ(rec.parent, 0u);
      tids.push_back(rec.tid);
    }
  }
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(std::unique(tids.begin(), tids.end()), tids.end());

  // Each inner's parent is the outer from the SAME thread.
  for (const obs::SpanRecord& rec : records) {
    if (rec.name != "thread.inner") {
      continue;
    }
    const auto parent = std::find_if(
        records.begin(), records.end(),
        [&](const obs::SpanRecord& r) { return r.id == rec.parent; });
    ASSERT_NE(parent, records.end());
    EXPECT_EQ(parent->name, "thread.outer");
    EXPECT_EQ(parent->tid, rec.tid);
  }
}

TEST(ChromeTrace, EverySliceCarriesTheRequiredFields) {
  obs::SpanCollector collector;
  {
    obs::Span outer = collector.begin("outer");
    outer.attr("k", 1);
    obs::Span inner = collector.begin("inner");
  }
  const std::string json = obs::chrome_trace_json(collector);
  const auto doc = parse_or_die(json);
  ASSERT_TRUE(doc.is_object());
  const obs::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::size_t slices = 0;
  for (const obs::JsonValue& event : events->as_array()) {
    ASSERT_NE(event.find("ph"), nullptr);
    const std::string& ph = event.find("ph")->as_string();
    if (ph != "X") {
      continue;  // metadata etc.
    }
    ++slices;
    ASSERT_NE(event.find("name"), nullptr);
    ASSERT_NE(event.find("ts"), nullptr);
    ASSERT_NE(event.find("dur"), nullptr);
    ASSERT_NE(event.find("pid"), nullptr);
    ASSERT_NE(event.find("tid"), nullptr);
    EXPECT_TRUE(event.find("ts")->is_number());
    EXPECT_TRUE(event.find("dur")->is_number());
    EXPECT_DOUBLE_EQ(event.find("pid")->as_number(), 1.0);
  }
  EXPECT_EQ(slices, 2u);
}

TEST(ChromeTrace, RoundTripsThroughSpansFromChromeTrace) {
  obs::SpanCollector collector;
  {
    obs::Span outer = collector.begin("outer");
    obs::Span inner = collector.begin("inner");
  }
  const auto original = collector.snapshot();
  const auto doc = parse_or_die(obs::chrome_trace_json(collector));
  const auto restored = obs::spans_from_chrome_trace(doc);
  ASSERT_EQ(restored.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(restored[i].name, original[i].name);
    EXPECT_EQ(restored[i].id, original[i].id);
    EXPECT_EQ(restored[i].parent, original[i].parent);
    EXPECT_EQ(restored[i].tid, original[i].tid);
    EXPECT_EQ(restored[i].start_us, original[i].start_us);
    EXPECT_EQ(restored[i].dur_us, original[i].dur_us);
  }
}

TEST(ChromeTrace, JsonlSpanEventsConvertToSlices) {
  obs::SpanCollector collector;
  {
    obs::Span outer = collector.begin("outer");
    obs::Span inner = collector.begin("inner");
    inner.attr("n", 7);
  }
  obs::MemorySink sink;
  obs::spans_to_jsonl(collector, sink);
  ASSERT_EQ(sink.lines().size(), 2u);

  std::string jsonl;
  for (const std::string& line : sink.lines()) {
    jsonl += line;
    jsonl += '\n';
  }
  jsonl += "{\"type\":\"checker_heartbeat\",\"states\":5,\"elapsed_ms\":2}\n";
  jsonl += "not json\n";

  std::istringstream in(jsonl);
  const obs::JsonlConversion conversion = obs::chrome_trace_from_jsonl(in);
  EXPECT_EQ(conversion.events, 3u);
  EXPECT_EQ(conversion.skipped, 1u);

  const auto doc = parse_or_die(conversion.trace_json);
  const auto restored = obs::spans_from_chrome_trace(doc);
  ASSERT_EQ(restored.size(), 2u);
  EXPECT_EQ(find_span(restored, "inner")->parent,
            find_span(restored, "outer")->id);

  // The heartbeat became an instant mark at elapsed_ms * 1000.
  bool instant_found = false;
  for (const obs::JsonValue& event :
       doc.find("traceEvents")->as_array()) {
    if (event.find("ph")->as_string() == "i") {
      instant_found = true;
      EXPECT_DOUBLE_EQ(event.find("ts")->as_number(), 2000.0);
    }
  }
  EXPECT_TRUE(instant_found);
}

TEST(ChromeTrace, EmitsProcessAndThreadNameMetadata) {
  obs::SpanCollector collector;
  {
    obs::Span outer = collector.begin("outer");
  }
  std::thread([&collector] {
    obs::Span worker = collector.begin("thread.worker");
  }).join();

  const auto doc = parse_or_die(obs::chrome_trace_json(collector));
  bool process_named = false;
  std::size_t thread_names = 0;
  for (const obs::JsonValue& event : doc.find("traceEvents")->as_array()) {
    if (event.find("ph")->as_string() != "M") {
      continue;
    }
    const std::string& name = event.find("name")->as_string();
    const obs::JsonValue* args = event.find("args");
    ASSERT_NE(args, nullptr);
    if (name == "process_name") {
      process_named = true;
      EXPECT_EQ(args->find("name")->as_string(), "commroute");
    } else if (name == "thread_name") {
      ++thread_names;
      const std::string& label = args->find("name")->as_string();
      if (event.find("tid")->as_number() == 0.0) {
        EXPECT_EQ(label, "main");
      } else {
        EXPECT_EQ(label.rfind("worker-", 0), 0u) << label;
      }
    }
  }
  EXPECT_TRUE(process_named);
  EXPECT_EQ(thread_names, 2u);  // main + the spawned worker
}

TEST(ChromeTrace, FlowEventsLinkSenderToConsumerSteps) {
  const spp::Instance good = spp::good_gadget();
  const Model m = Model::parse("RMS");
  engine::RoundRobinScheduler sched(m, good);
  obs::SpanCollector collector;
  engine::RunOptions options;
  options.obs.spans = &collector;
  options.causality = true;
  const auto result = engine::run(good, sched, options);
  ASSERT_TRUE(result.causality.has_value());

  const auto doc =
      parse_or_die(obs::chrome_trace_json(collector, *result.causality));
  std::size_t starts = 0, finishes = 0;
  for (const obs::JsonValue& event : doc.find("traceEvents")->as_array()) {
    const std::string& ph = event.find("ph")->as_string();
    if (ph != "s" && ph != "f") {
      continue;
    }
    EXPECT_EQ(event.find("cat")->as_string(), "causal");
    ASSERT_NE(event.find("id"), nullptr);
    ASSERT_NE(event.find("name"), nullptr);
    if (ph == "s") {
      ++starts;
    } else {
      ++finishes;
      // Perfetto binds the arrow to the enclosing slice only with an
      // explicit "enclosing" binding point.
      EXPECT_EQ(event.find("bp")->as_string(), "e");
    }
  }
  // Every consumed message whose send and consume steps are both traced
  // gets exactly one arrow: a start at the sender, a finish at the
  // consumer.
  EXPECT_GT(starts, 0u);
  EXPECT_EQ(starts, finishes);

  // The plain overload stays flow-free.
  const auto flat = parse_or_die(obs::chrome_trace_json(collector));
  for (const obs::JsonValue& event : flat.find("traceEvents")->as_array()) {
    const std::string& ph = event.find("ph")->as_string();
    EXPECT_NE(ph, "s");
    EXPECT_NE(ph, "f");
  }
}

TEST(EngineRun, ProducesRunStepActivateHierarchy) {
  const spp::Instance good = spp::good_gadget();
  const Model m = Model::parse("RMS");
  engine::RoundRobinScheduler sched(m, good);
  obs::SpanCollector collector;
  obs::Registry registry;
  engine::RunOptions options;
  options.record_trace = false;
  options.obs.spans = &collector;
  options.obs.metrics = &registry;
  const auto result = engine::run(good, sched, options);
  EXPECT_EQ(result.outcome, engine::Outcome::kConverged);

  const auto records = collector.snapshot();
  ASSERT_EQ(count_spans(records, "engine.run"), 1u);
  EXPECT_EQ(count_spans(records, "engine.step"), result.steps);
  EXPECT_GE(count_spans(records, "engine.activate"), result.steps);

  const obs::SpanRecord* run = find_span(records, "engine.run");
  EXPECT_EQ(run->parent, 0u);
  EXPECT_EQ(parse_or_die(run->args_json).find("outcome")->as_string(),
            "converged");
  for (const obs::SpanRecord& rec : records) {
    if (rec.name == "engine.step") {
      EXPECT_EQ(rec.parent, run->id);
    }
  }

  // engine.run_us histogram observed once per run.
  const auto samples = registry.snapshot();
  const auto hist = std::find_if(
      samples.begin(), samples.end(), [](const obs::MetricSample& s) {
        return s.name == "engine.run_us" &&
               s.kind == obs::MetricSample::Kind::kHistogram;
      });
  ASSERT_NE(hist, samples.end());
  EXPECT_EQ(hist->value, 1u);
}

TEST(CheckerExplore, ProducesExploreBatchExpandPruneHierarchy) {
  const spp::Instance dis = spp::disagree();
  obs::SpanCollector collector;
  obs::Registry registry;
  checker::ExploreOptions options;
  options.max_channel_length = 3;
  options.obs.spans = &collector;
  options.obs.metrics = &registry;
  const auto result = checker::explore(dis, Model::parse("RMS"), options);
  EXPECT_GE(result.states, 1u);

  const auto records = collector.snapshot();
  ASSERT_EQ(count_spans(records, "checker.explore"), 1u);
  EXPECT_GE(count_spans(records, "checker.frontier_batch"), 1u);
  EXPECT_GE(count_spans(records, "checker.expand"), 1u);
  EXPECT_GE(count_spans(records, "checker.scc_prune_pass"), 1u);

  const obs::SpanRecord* explore = find_span(records, "checker.explore");
  EXPECT_EQ(explore->parent, 0u);
  const auto args = parse_or_die(explore->args_json);
  EXPECT_DOUBLE_EQ(args.find("states")->as_number(),
                   static_cast<double>(result.states));

  for (const obs::SpanRecord& rec : records) {
    if (rec.name == "checker.frontier_batch" ||
        rec.name == "checker.scc_prune_pass") {
      EXPECT_EQ(rec.parent, explore->id) << rec.name;  // siblings
    } else if (rec.name == "checker.expand") {
      const auto parent = std::find_if(
          records.begin(), records.end(),
          [&](const obs::SpanRecord& r) { return r.id == rec.parent; });
      ASSERT_NE(parent, records.end());
      EXPECT_EQ(parent->name, "checker.frontier_batch");
    }
  }

  // Per-expansion durations landed in the checker.expand_us histogram.
  const auto samples = registry.snapshot();
  const auto hist = std::find_if(
      samples.begin(), samples.end(), [](const obs::MetricSample& s) {
        return s.name == "checker.expand_us" &&
               s.kind == obs::MetricSample::Kind::kHistogram;
      });
  ASSERT_NE(hist, samples.end());
  // Bound-skipped expansions record a span but skip the observe, so the
  // histogram can trail the span count slightly — never exceed it.
  EXPECT_GE(hist->value, 1u);
  EXPECT_LE(hist->value, count_spans(records, "checker.expand"));
}

TEST(CheckerExplore, HeartbeatsCarryElapsedMs) {
  const spp::Instance dis = spp::disagree();
  obs::MemorySink sink;
  checker::ExploreOptions options;
  options.max_channel_length = 3;
  options.heartbeat_every = 10;
  options.obs.sink = &sink;
  checker::explore(dis, Model::parse("RMS"), options);

  std::size_t heartbeats = 0;
  double last_elapsed = 0.0;
  for (const std::string& line : sink.lines()) {
    const auto v = parse_or_die(line);
    if (v.find("type")->as_string() != "checker_heartbeat") {
      continue;
    }
    ++heartbeats;
    ASSERT_NE(v.find("elapsed_ms"), nullptr);
    const double elapsed = v.find("elapsed_ms")->as_number();
    EXPECT_GE(elapsed, last_elapsed);  // monotone along the run
    last_elapsed = elapsed;
  }
  EXPECT_GE(heartbeats, 1u);
}

TEST(CheckerExplore, TimeBasedHeartbeatsStayQuietUnderTheInterval) {
  const spp::Instance dis = spp::disagree();
  obs::MemorySink sink;
  checker::ExploreOptions options;
  options.max_channel_length = 3;
  options.heartbeat_every = 0;  // count-based off
  options.heartbeat_interval_ms = 3600000;  // far beyond any test run
  options.obs.sink = &sink;
  checker::explore(dis, Model::parse("RMS"), options);
  for (const std::string& line : sink.lines()) {
    EXPECT_NE(parse_or_die(line).find("type")->as_string(),
              "checker_heartbeat");
  }
}

TEST(Campaign, RowsNestUnderTheCampaignAndEngineRunsUnderRows) {
  const spp::Instance good = spp::good_gadget();
  obs::SpanCollector collector;
  study::CampaignSpec spec;
  spec.instances = {{"GOOD", &good}};
  spec.models = {Model::parse("RMS")};
  spec.schedulers = {study::SchedulerKind::kRoundRobin,
                     study::SchedulerKind::kSynchronous};
  spec.obs.spans = &collector;
  const auto result = study::run_campaign(spec);

  const auto records = collector.snapshot();
  ASSERT_EQ(count_spans(records, "campaign.run"), 1u);
  EXPECT_EQ(count_spans(records, "campaign.row"), result.rows.size());
  EXPECT_EQ(count_spans(records, "engine.run"), result.rows.size());

  const obs::SpanRecord* campaign = find_span(records, "campaign.run");
  for (const obs::SpanRecord& rec : records) {
    if (rec.name == "campaign.row") {
      EXPECT_EQ(rec.parent, campaign->id);
      EXPECT_EQ(parse_or_die(rec.args_json).find("instance")->as_string(),
                "GOOD");
    } else if (rec.name == "engine.run") {
      const auto parent = std::find_if(
          records.begin(), records.end(),
          [&](const obs::SpanRecord& r) { return r.id == rec.parent; });
      ASSERT_NE(parent, records.end());
      EXPECT_EQ(parent->name, "campaign.row");
    }
  }
}

TEST(SpanCollectorMerge, OffsetsIdsParentsAndTids) {
  obs::SpanCollector target;
  {
    obs::Span main_span = target.begin("main");
  }

  obs::SpanCollector shard;
  {
    obs::Span outer = shard.begin("outer");
    obs::Span inner = shard.begin("inner");
  }

  target.merge_from(shard);
  const auto records = target.snapshot();
  ASSERT_EQ(records.size(), 3u);

  // Ids stay unique after the merge.
  std::vector<std::uint32_t> ids;
  for (const auto& rec : records) {
    ids.push_back(rec.id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());

  // The shard's internal parent link survived the offset: "inner" still
  // points at "outer", and "outer" stayed a root.
  const obs::SpanRecord* outer = nullptr;
  const obs::SpanRecord* inner = nullptr;
  const obs::SpanRecord* main_rec = nullptr;
  for (const auto& rec : records) {
    if (rec.name == "outer") outer = &rec;
    if (rec.name == "inner") inner = &rec;
    if (rec.name == "main") main_rec = &rec;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(main_rec, nullptr);
  EXPECT_EQ(outer->parent, 0u);
  EXPECT_EQ(inner->parent, outer->id);
  // Same OS thread, but distinct collectors: merged records get a fresh
  // dense tid so timelines never collide.
  EXPECT_NE(outer->tid, main_rec->tid);
  EXPECT_EQ(inner->tid, outer->tid);
}

TEST(SpanCollectorMerge, NewSpansAfterMergeStayUnique) {
  obs::SpanCollector target;
  obs::SpanCollector shard;
  {
    obs::Span s = shard.begin("shard_span");
  }
  target.merge_from(shard);
  {
    obs::Span later = target.begin("after_merge");
  }
  const auto records = target.snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_NE(records[0].id, records[1].id);
  EXPECT_NE(records[0].tid, records[1].tid);
}

TEST(SpanCollectorMerge, RebasesTimestampsOntoTheTargetEpoch) {
  obs::SpanCollector target;  // earlier epoch
  obs::SpanCollector shard;
  {
    obs::Span s = shard.begin("work");
  }
  target.merge_from(shard);
  // The shard was created after the target, so the re-based timestamp
  // cannot underflow below the target's epoch.
  const auto records = target.snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_GE(records[0].start_us, 0u);
}

}  // namespace
}  // namespace commroute
