// ThreadPool / parallel_for_each semantics: ordered result collection,
// dense worker ids, first-failure exception propagation, the zero-task
// edge, and queue draining on destruction — the contract the parallel
// campaign driver builds on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace commroute::runtime {
namespace {

TEST(ThreadPool, ResolveThreadsNeverReturnsZero) {
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(7), 7u);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, DestructorDrainsSubmittedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
  }  // join happens here
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, SubmittedExceptionSurfacesViaRethrowPending) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  // Give the worker time to run and record the failure.
  for (int i = 0; i < 2000 && pool.stats().tasks_executed < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  try {
    pool.rethrow_pending();
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task failed");
  }
  // The error was consumed: a second call is clean, and so is the
  // destructor.
  pool.rethrow_pending();
}

TEST(ThreadPool, FirstSubmittedExceptionWinsAndWorkersSurvive) {
  ThreadPool pool(1);  // serial worker: deterministic first failure
  std::atomic<int> ran{0};
  pool.submit([] { throw std::logic_error("first"); });
  pool.submit([] { throw std::logic_error("second"); });
  pool.submit([&ran] { ran.fetch_add(1); });
  for (int i = 0; i < 2000 && ran.load() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // A throwing task must not kill its worker thread.
  EXPECT_EQ(ran.load(), 1);
  try {
    pool.rethrow_pending();
    FAIL() << "expected throw";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
}

TEST(ThreadPool, DestructorRethrowsUnconsumedTaskException) {
  bool thrown = false;
  try {
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("lost otherwise"); });
  } catch (const std::runtime_error& e) {
    thrown = true;
    EXPECT_STREQ(e.what(), "lost otherwise");
  }
  EXPECT_TRUE(thrown);
}

TEST(ThreadPool, StatsCountTasksAndWorkers) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  for (int i = 0; i < 2000 && ran.load() < 64; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.workers, 3u);
  EXPECT_EQ(stats.tasks_executed, 64u);
  ASSERT_EQ(stats.per_worker.size(), 3u);
  std::uint64_t per_worker_sum = 0;
  for (const WorkerStats& w : stats.per_worker) {
    per_worker_sum += w.tasks;
  }
  EXPECT_EQ(per_worker_sum, 64u);
  EXPECT_GE(stats.queue_depth_peak, 1u);
  // utilization is a fraction; with any idle wait it stays in [0, 1].
  EXPECT_GE(stats.utilization(), 0.0);
  EXPECT_LE(stats.utilization(), 1.0);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ParallelForEach, CollectsResultsInIndexOrder) {
  ThreadPool pool(4);
  const std::size_t n = 1000;
  std::vector<std::size_t> results(n, 0);
  parallel_for_each(pool, n, [&results](std::size_t, std::size_t i) {
    results[i] = i * i;
  });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(results[i], i * i) << "index " << i;
  }
}

TEST(ParallelForEach, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(8);
  const std::size_t n = 500;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_each(pool, n, [&hits](std::size_t, std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForEach, WorkerIdsAreDense) {
  ThreadPool pool(3);
  std::mutex mutex;
  std::set<std::size_t> workers;
  parallel_for_each(pool, 64, [&](std::size_t worker, std::size_t) {
    std::lock_guard<std::mutex> lock(mutex);
    workers.insert(worker);
  });
  ASSERT_FALSE(workers.empty());
  // Dense ids in [0, min(pool.size(), count)): never an id >= 3, and
  // worker 0 (the calling thread) always participates.
  EXPECT_LT(*workers.rbegin(), 3u);
  EXPECT_TRUE(workers.count(0));
}

TEST(ParallelForEach, ZeroTasksIsANoOp) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for_each(pool, 0, [&called](std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ParallelForEach, PropagatesTheFirstException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    parallel_for_each(pool, 100, [&](std::size_t, std::size_t i) {
      if (i == 7) {
        throw std::runtime_error("boom at 7");
      }
      completed.fetch_add(1);
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 7");
  }
  // The failure aborts further claiming; already-claimed indices finish.
  EXPECT_LT(completed.load(), 100);
}

TEST(ParallelForEach, LowestIndexExceptionWinsWhenSerial) {
  // With one worker the indices run in order, so the first throwing
  // index is deterministically the one reported.
  ThreadPool pool(1);
  try {
    parallel_for_each(pool, 10, [](std::size_t, std::size_t i) {
      if (i >= 3) {
        throw std::out_of_range("idx " + std::to_string(i));
      }
    });
    FAIL() << "expected throw";
  } catch (const std::out_of_range& e) {
    EXPECT_STREQ(e.what(), "idx 3");
  }
}

TEST(ParallelForEach, WorksWithMoreIndicesThanThreads) {
  ThreadPool pool(2);
  std::atomic<std::uint64_t> sum{0};
  parallel_for_each(pool, 10000, [&sum](std::size_t, std::size_t i) {
    sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 10000ull * 9999ull / 2);
}

}  // namespace
}  // namespace commroute::runtime
