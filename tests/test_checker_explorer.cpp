#include <gtest/gtest.h>

#include "checker/explorer.hpp"
#include "engine/runner.hpp"
#include "spp/gadgets.hpp"
#include "spp/solver.hpp"

namespace commroute::checker {
namespace {

using model::Model;

// Ex. A.1 / Thm. 3.8 empirically: DISAGREE can oscillate in R1O, RMO,
// R1S, RMS, R1F (and more) but provably cannot in REO, REF, R1A, RMA, REA.
TEST(Explorer, DisagreeOscillatesInWeakModels) {
  const spp::Instance inst = spp::disagree();
  for (const char* name : {"R1O", "RMO", "R1S", "RMS", "RES", "R1F",
                           "RMF"}) {
    const ExploreResult r =
        explore(inst, Model::parse(name), {.max_channel_length = 3});
    EXPECT_TRUE(r.oscillation_found) << name << ": " << r.summary();
  }
}

TEST(Explorer, DisagreeCannotOscillateInStrongModels) {
  const spp::Instance inst = spp::disagree();
  for (const char* name : {"REO", "REF", "R1A", "RMA", "REA"}) {
    const ExploreResult r =
        explore(inst, Model::parse(name), {.max_channel_length = 3});
    EXPECT_TRUE(r.proves_no_oscillation()) << name << ": " << r.summary();
    EXPECT_TRUE(r.exhaustive) << name;
  }
}

TEST(Explorer, DisagreeOscillatesUnderUnreliableChannels) {
  const spp::Instance inst = spp::disagree();
  const ExploreResult r = explore(inst, Model::parse("U1O"),
                                  {.max_channel_length = 3});
  EXPECT_TRUE(r.oscillation_found) << r.summary();
}

TEST(Explorer, DisagreeConvergedOutcomesAreTheStableSolutions) {
  const spp::Instance inst = spp::disagree();
  const auto solutions = spp::stable_assignments(inst);
  const ExploreResult r =
      explore(inst, Model::parse("REA"), {.max_channel_length = 3});
  ASSERT_EQ(r.quiescent_assignments.size(), solutions.size());
  for (const auto& q : r.quiescent_assignments) {
    EXPECT_TRUE(spp::is_solution(inst, q));
  }
}

TEST(Explorer, GoodGadgetSafeInEveryModelBlock) {
  const spp::Instance inst = spp::good_gadget();
  // Exhaustive proofs for a representative reliable set; the polling
  // models drain channels so their spaces are tiny.
  for (const char* name : {"REO", "REF", "REA", "R1A", "RMA"}) {
    const ExploreResult r =
        explore(inst, Model::parse(name), {.max_channel_length = 3});
    EXPECT_TRUE(r.proves_no_oscillation()) << name << ": " << r.summary();
  }
}

TEST(Explorer, GoodGadgetSafeUnderQueueingModel) {
  const spp::Instance inst = spp::good_gadget();
  const ExploreResult r = explore(inst, Model::parse("RMS"),
                                  {.max_channel_length = 3});
  EXPECT_TRUE(r.proves_no_oscillation()) << r.summary();
  ASSERT_EQ(r.quiescent_assignments.size(), 1u);
  EXPECT_TRUE(spp::is_solution(inst, r.quiescent_assignments[0]));
}

TEST(Explorer, BadGadgetOscillatesEvenWhenPolling) {
  // BAD GADGET has no stable assignment, so it oscillates in every model
  // including the strongest ones.
  const spp::Instance inst = spp::bad_gadget();
  for (const char* name : {"REA", "REO", "REF"}) {
    const ExploreResult r = explore(inst, Model::parse(name),
                                    {.max_channel_length = 2,
                                     .max_states = 20000});
    EXPECT_TRUE(r.oscillation_found) << name << ": " << r.summary();
  }
}

TEST(Explorer, BadGadgetHasNoQuiescentStateInPollingModels) {
  const spp::Instance inst = spp::bad_gadget();
  const ExploreResult r = explore(inst, Model::parse("REA"),
                                  {.max_channel_length = 2,
                                   .max_states = 20000});
  EXPECT_TRUE(r.quiescent_assignments.empty());
}

TEST(Explorer, BoundedVerdictIsFlagged) {
  const spp::Instance inst = spp::bad_gadget();
  const ExploreResult r = explore(inst, Model::parse("R1O"),
                                  {.max_channel_length = 1,
                                   .max_states = 500});
  EXPECT_FALSE(r.exhaustive);
  EXPECT_TRUE(r.channel_bound_hit || r.state_cap_hit);
  EXPECT_FALSE(r.proves_no_oscillation());
}

// The checker-discovered oscillation can be replayed: the extracted
// prefix+cycle script, looped forever, is a provably cycling fair
// execution of the same model.
TEST(Explorer, ExtractedWitnessReplaysAsProvableOscillation) {
  const spp::Instance inst = spp::disagree();
  for (const char* name : {"R1O", "RMS", "U1O"}) {
    const Model m = Model::parse(name);
    const ExploreResult r = explore(
        inst, m, {.max_channel_length = 3, .extract_witness = true});
    ASSERT_TRUE(r.oscillation_found) << name;
    ASSERT_FALSE(r.witness_cycle.empty()) << name;

    model::ActivationScript script = r.witness_prefix;
    const std::size_t loop_from = script.size();
    script.insert(script.end(), r.witness_cycle.begin(),
                  r.witness_cycle.end());
    for (const auto& step : script) {
      model::require_step_allowed(m, inst, step);
    }
    engine::ScriptedScheduler sched(script, loop_from);
    const auto run = engine::run(
        inst, sched,
        {.max_steps = 10 * script.size() + 100, .enforce_model = m});
    EXPECT_EQ(run.outcome, engine::Outcome::kOscillating) << name;
    // The replay is fair: every channel is read within the loop.
    EXPECT_LE(run.max_attempt_gap, script.size() + r.witness_cycle.size())
        << name;
  }
}

// The witness loop covers every channel (the fairness requirement).
TEST(Explorer, WitnessCycleAttemptsEveryChannel) {
  const spp::Instance inst = spp::disagree();
  const ExploreResult r = explore(
      inst, Model::parse("R1O"),
      {.max_channel_length = 3, .extract_witness = true});
  ASSERT_TRUE(r.oscillation_found);
  std::vector<bool> attempted(inst.graph().channel_count(), false);
  for (const auto& step : r.witness_cycle) {
    for (const auto& read : step.reads) {
      attempted[read.channel] = true;
    }
  }
  for (ChannelIdx c = 0; c < inst.graph().channel_count(); ++c) {
    EXPECT_TRUE(attempted[c]) << inst.graph().channel_name(c);
  }
}

TEST(Explorer, NoWitnessWithoutRequest) {
  const spp::Instance inst = spp::disagree();
  const ExploreResult r =
      explore(inst, Model::parse("R1O"), {.max_channel_length = 3});
  EXPECT_TRUE(r.oscillation_found);
  EXPECT_TRUE(r.witness_cycle.empty());
  EXPECT_TRUE(r.witness_prefix.empty());
}

TEST(Explorer, SummaryMentionsVerdict) {
  const spp::Instance inst = spp::good_gadget();
  const ExploreResult r = explore(inst, Model::parse("REA"),
                                  {.max_channel_length = 3});
  EXPECT_NE(r.summary().find("no fair oscillation"), std::string::npos);
  EXPECT_NE(r.summary().find("exhaustive"), std::string::npos);
}

TEST(Explorer, StateAndTransitionCountsAreConsistent) {
  const spp::Instance inst = spp::disagree();
  const ExploreResult r = explore(inst, Model::parse("REO"),
                                  {.max_channel_length = 3});
  EXPECT_GT(r.states, 1u);
  EXPECT_GE(r.transitions, r.states - 1);  // reached via some edge
}

// A truncated verdict names the bound that fired and its value.
TEST(Explorer, TruncationReportsTheLimitingBound) {
  const spp::Instance inst = spp::disagree();

  ExploreOptions capped;
  capped.max_channel_length = 3;
  capped.max_states = 4;
  const ExploreResult by_states = explore(inst, Model::parse("RMS"), capped);
  EXPECT_TRUE(by_states.state_cap_hit);
  EXPECT_EQ(by_states.state_cap_limit, 4u);
  EXPECT_EQ(by_states.channel_length_limit, 0u);
  EXPECT_NE(by_states.summary().find("state cap 4 hit"),
            std::string::npos);

  ExploreOptions narrow;
  narrow.max_channel_length = 0;
  const ExploreResult by_channel =
      explore(inst, Model::parse("RMS"), narrow);
  EXPECT_TRUE(by_channel.channel_bound_hit);
  EXPECT_EQ(by_channel.channel_length_limit, 0u);
  EXPECT_GE(by_channel.bound_skipped_expansions, 1u);
  EXPECT_NE(by_channel.summary().find("channel bound 0 hit"),
            std::string::npos);

  // An untruncated exploration reports no limits.
  const ExploreResult full = explore(inst, Model::parse("REA"),
                                     {.max_channel_length = 3});
  EXPECT_TRUE(full.exhaustive);
  EXPECT_EQ(full.state_cap_limit, 0u);
  EXPECT_EQ(full.channel_length_limit, 0u);
  EXPECT_EQ(full.bound_skipped_expansions, 0u);
}

TEST(Explorer, TrackedBytesGrowWithTheSeenSet) {
  const spp::Instance inst = spp::disagree();
  const ExploreResult r = explore(inst, Model::parse("RMS"),
                                  {.max_channel_length = 3});
  // Every interned state costs at least its struct; the estimate can
  // never undercut that floor.
  EXPECT_GT(r.tracked_peak_bytes, 0u);
  EXPECT_GE(r.bytes_per_state(), 1.0);
  EXPECT_GE(r.tracked_peak_bytes,
            r.states * sizeof(engine::NetworkState));
  EXPECT_FALSE(r.memory_limit_hit);
  EXPECT_EQ(r.memory_limit, 0u);

  // An attached TrackedBytes counter mirrors the internal accounting.
  obs::TrackedBytes memory;
  ExploreOptions opts;
  opts.max_channel_length = 3;
  opts.memory = &memory;
  const ExploreResult tracked = explore(inst, Model::parse("RMS"), opts);
  EXPECT_EQ(memory.peak(), tracked.tracked_peak_bytes);
}

TEST(Explorer, MemoryLimitTruncatesDeterministically) {
  const spp::Instance inst = spp::disagree();
  ExploreOptions opts;
  opts.max_channel_length = 3;
  opts.memory_limit_bytes = 4096;  // far below the full exploration
  const ExploreResult r = explore(inst, Model::parse("RMS"), opts);
  EXPECT_TRUE(r.memory_limit_hit);
  EXPECT_EQ(r.memory_limit, 4096u);
  EXPECT_FALSE(r.exhaustive);
  EXPECT_NE(r.summary().find("memory limit 4096 bytes hit"),
            std::string::npos);
  // Byte estimates come from element counts, so the truncation point is
  // machine-independent: a rerun stops at exactly the same state count.
  const ExploreResult again = explore(inst, Model::parse("RMS"), opts);
  EXPECT_EQ(again.states, r.states);
  EXPECT_EQ(again.tracked_peak_bytes, r.tracked_peak_bytes);

  // A generous limit never fires, and the exploration goes deeper.
  opts.memory_limit_bytes = 1u << 30;
  const ExploreResult roomy = explore(inst, Model::parse("RMS"), opts);
  EXPECT_FALSE(roomy.memory_limit_hit);
  EXPECT_GT(roomy.states, r.states);
}

TEST(Explorer, ExplorationStatisticsArePopulated) {
  const spp::Instance inst = spp::disagree();
  const ExploreResult r = explore(inst, Model::parse("RMS"),
                                  {.max_channel_length = 3});
  EXPECT_GE(r.frontier_peak, 1u);
  EXPECT_GE(r.scc_prune_passes, 1u);
  // The disagree configuration graph has reconverging paths, so some
  // successors must deduplicate.
  EXPECT_GT(r.dedup_hits, 0u);
}

}  // namespace
}  // namespace commroute::checker
