#include <gtest/gtest.h>

#include "checker/explorer.hpp"
#include "engine/runner.hpp"
#include "spp/dispute_wheel.hpp"
#include "spp/gadgets.hpp"
#include "spp/solver.hpp"

namespace commroute::spp {
namespace {

TEST(CyclicGadget, ThreeIsBadGadget) {
  const Instance c3 = cyclic_gadget(3);
  const Instance bad = bad_gadget();
  EXPECT_EQ(c3.node_count(), bad.node_count());
  EXPECT_EQ(stable_assignments(c3).size(), 0u);
}

TEST(CyclicGadget, OddRingsHaveNoSolution) {
  EXPECT_TRUE(stable_assignments(cyclic_gadget(3)).empty());
  EXPECT_TRUE(stable_assignments(cyclic_gadget(5)).empty());
}

TEST(CyclicGadget, EvenRingsHaveTwoAlternatingSolutions) {
  for (const std::size_t k : {4u, 6u}) {
    const Instance inst = cyclic_gadget(k);
    const auto sols = stable_assignments(inst);
    ASSERT_EQ(sols.size(), 2u) << k;
    // Each solution alternates direct / two-hop around the ring.
    for (const auto& pi : sols) {
      std::size_t direct = 0, indirect = 0;
      for (NodeId v = 0; v < inst.node_count(); ++v) {
        if (v == inst.destination()) {
          continue;
        }
        (pi[v].size() == 2 ? direct : indirect) += 1;
      }
      EXPECT_EQ(direct, k / 2);
      EXPECT_EQ(indirect, k / 2);
    }
  }
}

TEST(CyclicGadget, AllHaveDisputeWheels) {
  for (const std::size_t k : {3u, 4u, 5u}) {
    EXPECT_FALSE(is_dispute_wheel_free(cyclic_gadget(k))) << k;
  }
}

TEST(CyclicGadget, OddRingNeverConverges) {
  const Instance inst = cyclic_gadget(5);
  for (const char* name : {"REA", "RMS"}) {
    engine::RoundRobinScheduler sched(model::Model::parse(name), inst);
    const auto run = engine::run(inst, sched, {.max_steps = 3000,
                                               .record_trace = false});
    EXPECT_NE(run.outcome, engine::Outcome::kConverged) << name;
  }
}

TEST(CyclicGadget, EvenRingCanConvergeToAnAlternatingSolution) {
  // The even ring has solutions but also a dispute wheel, so convergence
  // is schedule-dependent: randomized fair schedules settle on one of the
  // alternating solutions in most runs.
  const Instance inst = cyclic_gadget(4);
  std::size_t converged = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    engine::RandomFairScheduler sched(model::Model::parse("RMS"), inst,
                                      Rng(seed), {.sweep_period = 8});
    const auto run = engine::run(inst, sched, {.max_steps = 5000});
    if (run.outcome == engine::Outcome::kConverged) {
      ++converged;
      EXPECT_TRUE(is_solution(inst, run.final_assignment));
    }
  }
  EXPECT_GT(converged, 0u);
}

TEST(CyclicGadget, RejectsTooSmall) {
  EXPECT_THROW(cyclic_gadget(2), PreconditionError);
}

TEST(DisagreeChain, SolutionCountIsTwoToTheK) {
  EXPECT_EQ(stable_assignments(disagree_chain(1)).size(), 2u);
  EXPECT_EQ(stable_assignments(disagree_chain(2)).size(), 4u);
  EXPECT_EQ(stable_assignments(disagree_chain(3)).size(), 8u);
}

TEST(DisagreeChain, StructureIsKIndependentPairs) {
  const Instance inst = disagree_chain(3);
  EXPECT_EQ(inst.node_count(), 7u);          // d + 3 pairs
  EXPECT_EQ(inst.graph().edge_count(), 9u);  // 3 edges per pair
}

TEST(DisagreeChain, PollingStillCannotOscillate) {
  // Thm. 3.8's argument lifts to each independent pair.
  const Instance inst = disagree_chain(2);
  const auto r = checker::explore(inst, model::Model::parse("REA"),
                                  {.max_channel_length = 2,
                                   .max_states = 120000});
  EXPECT_FALSE(r.oscillation_found);
}

TEST(DisagreeChain, ConvergedOutcomeIsOneOfTheProducts) {
  const Instance inst = disagree_chain(2);
  engine::RoundRobinScheduler sched(model::Model::parse("REA"), inst);
  const auto run = engine::run(inst, sched);
  ASSERT_EQ(run.outcome, engine::Outcome::kConverged);
  EXPECT_TRUE(is_solution(inst, run.final_assignment));
}

}  // namespace
}  // namespace commroute::spp
