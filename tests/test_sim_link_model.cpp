// LinkModel sampling: distribution bounds, determinism per seed, loss
// process stationarity (iid and Gilbert-Elliott burst), and the
// no-RNG-consumption contract for lossless links.
#include <gtest/gtest.h>

#include "sim/link_model.hpp"
#include "support/error.hpp"

namespace commroute::sim {
namespace {

TEST(LatencyDist, NamesRoundTrip) {
  for (const LatencyDist d : {LatencyDist::kFixed, LatencyDist::kUniform,
                              LatencyDist::kExponential}) {
    EXPECT_EQ(parse_latency_dist(to_string(d)), d);
  }
  EXPECT_THROW(parse_latency_dist("gaussian"), ParseError);
}

TEST(LinkModel, FixedLatencyIsExact) {
  LinkModel link;
  link.dist = LatencyDist::kFixed;
  link.latency_us = 1234;
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(link.sample_latency(rng), 1234u);
  }
}

TEST(LinkModel, UniformStaysInBounds) {
  LinkModel link;
  link.dist = LatencyDist::kUniform;
  link.latency_us = 100;
  link.jitter_us = 50;
  Rng rng(7);
  std::uint64_t lo = 1000, hi = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t s = link.sample_latency(rng);
    ASSERT_GE(s, 100u);
    ASSERT_LE(s, 150u);
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  EXPECT_EQ(lo, 100u);  // both endpoints reachable
  EXPECT_EQ(hi, 150u);
}

TEST(LinkModel, ExponentialHasRoughlyTheConfiguredMean) {
  LinkModel link;
  link.dist = LatencyDist::kExponential;
  link.latency_us = 1000;
  Rng rng(3);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(link.sample_latency(rng));
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 1000.0, 30.0);
}

TEST(LinkModel, SamplingIsDeterministicPerSeed) {
  LinkModel link;
  link.dist = LatencyDist::kExponential;
  link.latency_us = 500;
  link.jitter_us = 20;
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(link.sample_latency(a), link.sample_latency(b));
  }
}

TEST(LossProcess, ZeroLossConsumesNoRandomness) {
  LinkModel lossless;
  lossless.loss_prob = 0.0;
  LossProcess process(lossless);
  Rng rng(5), untouched(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(process.sample(rng));
  }
  // The stream was never advanced: both generators still agree.
  EXPECT_EQ(rng.next(), untouched.next());
}

TEST(LossProcess, IidLossMatchesStationaryRate) {
  LinkModel link;
  link.loss_prob = 0.25;
  LossProcess process(link);
  Rng rng(11);
  int lost = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    lost += process.sample(rng) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.25, 0.02);
}

TEST(LossProcess, BurstLossMatchesStationaryRateWithLongerRuns) {
  LinkModel link;
  link.loss_prob = 0.2;
  link.burst_mean = 4.0;
  LossProcess process(link);
  Rng rng(13);
  int lost = 0, runs = 0;
  bool prev = false;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const bool l = process.sample(rng);
    lost += l ? 1 : 0;
    if (l && !prev) {
      ++runs;
    }
    prev = l;
  }
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.2, 0.03);
  // Mean run length ~ burst_mean, so far fewer distinct runs than losses.
  const double mean_run = static_cast<double>(lost) / runs;
  EXPECT_GT(mean_run, 2.5);
}

TEST(LossProcess, RejectsCertainLoss) {
  LinkModel link;
  link.loss_prob = 1.0;
  EXPECT_THROW(LossProcess{link}, PreconditionError);
}

TEST(LinkModel, DescribeMentionsDistAndLoss) {
  LinkModel link;
  link.dist = LatencyDist::kUniform;
  link.latency_us = 100;
  link.jitter_us = 50;
  link.loss_prob = 0.1;
  const std::string desc = link.describe();
  EXPECT_NE(desc.find("uniform"), std::string::npos);
  EXPECT_NE(desc.find("100"), std::string::npos);
  EXPECT_NE(desc.find("0.1"), std::string::npos);
}

}  // namespace
}  // namespace commroute::sim
