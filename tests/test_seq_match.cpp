#include <gtest/gtest.h>

#include "trace/seq_match.hpp"

namespace commroute::trace {
namespace {

// Assignments for a 1-node pseudo-network: each distinct path is a state.
Assignment A() { return {Path{1}}; }
Assignment B() { return {Path{2}}; }
Assignment C() { return {Path{3}}; }

Trace make(const std::vector<Assignment>& states) {
  Trace t(states.front());
  for (std::size_t i = 1; i < states.size(); ++i) {
    t.record(states[i]);
  }
  return t;
}

TEST(SeqMatch, ExactRequiresIdenticalSequences) {
  EXPECT_TRUE(matches_exactly(make({A(), B()}), make({A(), B()})));
  EXPECT_FALSE(matches_exactly(make({A(), B()}), make({A(), B(), B()})));
  EXPECT_FALSE(matches_exactly(make({A(), B()}), make({B(), A()})));
}

TEST(SeqMatch, RepetitionAcceptsStretchedCopies) {
  EXPECT_TRUE(matches_with_repetition(make({A(), B()}),
                                      make({A(), A(), B(), B(), B()})));
  EXPECT_TRUE(matches_with_repetition(make({A(), B(), C()}),
                                      make({A(), B(), C()})));
}

TEST(SeqMatch, RepetitionRejectsNewStates) {
  EXPECT_FALSE(matches_with_repetition(make({A(), C()}),
                                       make({A(), B(), C()})));
}

TEST(SeqMatch, RepetitionRejectsReordering) {
  EXPECT_FALSE(matches_with_repetition(make({A(), B(), C()}),
                                       make({A(), C(), B()})));
}

TEST(SeqMatch, RepetitionIsStutterInvariant) {
  // The original may contain no-op stutters that the candidate omits
  // (finite-prefix reading of Def. 3.2; see seq_match.hpp).
  EXPECT_TRUE(matches_with_repetition(make({A(), A(), B()}),
                                      make({A(), B()})));
  EXPECT_TRUE(matches_with_repetition(make({A(), B(), B(), A()}),
                                      make({A(), A(), B(), A()})));
}

TEST(SeqMatch, RepetitionHandlesAlternation) {
  EXPECT_TRUE(matches_with_repetition(
      make({A(), B(), A(), B()}),
      make({A(), B(), B(), A(), B(), B()})));
  EXPECT_FALSE(matches_with_repetition(make({A(), B(), A()}),
                                       make({A(), B()})));
}

TEST(SeqMatch, SubsequenceEmbedsCollapsedOriginal) {
  EXPECT_TRUE(matches_as_subsequence(make({A(), C()}),
                                     make({A(), B(), C()})));
  EXPECT_TRUE(matches_as_subsequence(make({A(), A(), C()}),
                                     make({A(), B(), C()})));
  EXPECT_FALSE(matches_as_subsequence(make({A(), C()}),
                                      make({C(), A()})));
  EXPECT_FALSE(matches_as_subsequence(make({A(), B(), A()}),
                                      make({A(), B()})));
}

TEST(SeqMatch, HierarchyExactImpliesRepetitionImpliesSubsequence) {
  const Trace orig = make({A(), B(), C()});
  const Trace same = make({A(), B(), C()});
  EXPECT_TRUE(matches_exactly(orig, same));
  EXPECT_TRUE(matches_with_repetition(orig, same));
  EXPECT_TRUE(matches_as_subsequence(orig, same));

  const Trace stretched = make({A(), B(), B(), C()});
  EXPECT_FALSE(matches_exactly(orig, stretched));
  EXPECT_TRUE(matches_with_repetition(orig, stretched));
  EXPECT_TRUE(matches_as_subsequence(orig, stretched));

  const Trace padded = make({A(), B(), A(), B(), C()});
  EXPECT_FALSE(matches_exactly(orig, padded));
  EXPECT_FALSE(matches_with_repetition(orig, padded));
  EXPECT_TRUE(matches_as_subsequence(orig, padded));
}

TEST(SeqMatch, StrongestMatchRanksCorrectly) {
  const Trace orig = make({A(), B()});
  EXPECT_EQ(strongest_match(orig, make({A(), B()})), MatchKind::kExact);
  EXPECT_EQ(strongest_match(orig, make({A(), A(), B()})),
            MatchKind::kRepetition);
  EXPECT_EQ(strongest_match(orig, make({A(), C(), B()})),
            MatchKind::kSubsequence);
  EXPECT_EQ(strongest_match(orig, make({B(), A()})), MatchKind::kNone);
}

TEST(SeqMatch, FirstDivergenceFindsTheStep) {
  EXPECT_FALSE(first_divergence(make({A(), B()}), make({A(), B()}))
                   .has_value());
  EXPECT_EQ(*first_divergence(make({A(), B()}), make({A(), C()})), 1u);
  EXPECT_EQ(*first_divergence(make({A(), B()}), make({A(), B(), C()})),
            2u);
  EXPECT_EQ(*first_divergence(make({B()}), make({A()})), 0u);
}

TEST(SeqMatch, ToStringNames) {
  EXPECT_EQ(to_string(MatchKind::kNone), "none");
  EXPECT_EQ(to_string(MatchKind::kSubsequence), "subsequence");
  EXPECT_EQ(to_string(MatchKind::kRepetition), "repetition");
  EXPECT_EQ(to_string(MatchKind::kExact), "exact");
}

}  // namespace
}  // namespace commroute::trace
