// Resource telemetry: TrackedBytes semantics, process-memory probing,
// the TelemetrySampler lifecycle, and the mem/pool report consumers.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/analysis.hpp"
#include "obs/events.hpp"
#include "obs/json.hpp"
#include "obs/resource.hpp"

namespace {

using namespace commroute;

TEST(TrackedBytes, AddSubPeak) {
  obs::TrackedBytes bytes;
  EXPECT_EQ(bytes.current(), 0u);
  EXPECT_EQ(bytes.peak(), 0u);
  bytes.add(100);
  bytes.add(50);
  EXPECT_EQ(bytes.current(), 150u);
  EXPECT_EQ(bytes.peak(), 150u);
  bytes.sub(120);
  EXPECT_EQ(bytes.current(), 30u);
  EXPECT_EQ(bytes.peak(), 150u);  // high watermark survives release
  bytes.add(10);
  EXPECT_EQ(bytes.current(), 40u);
  EXPECT_EQ(bytes.peak(), 150u);  // not exceeded again
  bytes.reset();
  EXPECT_EQ(bytes.current(), 0u);
  EXPECT_EQ(bytes.peak(), 0u);
}

TEST(TrackedBytes, PeakUnderConcurrentWriters) {
  obs::TrackedBytes bytes;
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&bytes] {
      for (int i = 0; i < kIters; ++i) {
        bytes.add(3);
        bytes.sub(3);
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  EXPECT_EQ(bytes.current(), 0u);
  EXPECT_GE(bytes.peak(), 3u);
  EXPECT_LE(bytes.peak(), 3u * kThreads);
}

TEST(ProcessMemory, ReportsResidentSet) {
  const obs::ProcessMemory mem = obs::read_process_memory();
#if defined(__linux__)
  EXPECT_GT(mem.rss_bytes, 0u);
  EXPECT_GT(mem.peak_rss_bytes, 0u);
  EXPECT_GE(mem.peak_rss_bytes, mem.rss_bytes);
#else
  (void)mem;  // zero fields are the documented degradation
#endif
}

TEST(TelemetrySampler, EmitsFirstAndFinalSnapshot) {
  obs::MemorySink sink;
  obs::TrackedBytes bytes;
  bytes.add(4096);
  std::atomic<std::uint64_t> probe_value{7};
  // Long interval: only the start() snapshot and the stop() snapshot
  // fire, keeping the test fast and deterministic in count.
  obs::TelemetrySampler sampler(
      sink, {.interval_ms = 60000, .process_memory = true});
  sampler.add_bytes("seen_bytes", &bytes);
  sampler.add_probe("tasks", [&probe_value] {
    return probe_value.load(std::memory_order_relaxed);
  });
  EXPECT_FALSE(sampler.running());
  sampler.start();
  EXPECT_TRUE(sampler.running());
  bytes.add(4096);
  probe_value.store(11, std::memory_order_relaxed);
  sampler.stop();
  EXPECT_FALSE(sampler.running());

  ASSERT_EQ(sink.lines().size(), 2u);
  EXPECT_EQ(sampler.snapshots(), 2u);
  const auto last = obs::json_parse(sink.lines().back());
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->find("type")->as_string(), "telemetry_snapshot");
  EXPECT_EQ(last->find("seq")->as_number(), 1.0);
  ASSERT_NE(last->find("elapsed_ms"), nullptr);
  ASSERT_NE(last->find("rss_bytes"), nullptr);
  EXPECT_EQ(last->find("seen_bytes")->as_number(), 8192.0);
  EXPECT_EQ(last->find("seen_bytes_peak")->as_number(), 8192.0);
  EXPECT_EQ(last->find("tasks")->as_number(), 11.0);
}

TEST(TelemetrySampler, RegistrationAfterStartThrows) {
  obs::MemorySink sink;
  obs::TrackedBytes bytes;
  obs::TelemetrySampler sampler(sink, {.interval_ms = 60000});
  sampler.start();
  EXPECT_THROW(sampler.add_bytes("late", &bytes), std::logic_error);
  EXPECT_THROW(sampler.add_probe("late", [] { return 0ull; }),
               std::logic_error);
  sampler.stop();
  sampler.stop();  // idempotent
  EXPECT_EQ(sink.lines().size(), 2u);
}

TEST(TelemetrySampler, StopsOnDestruction) {
  obs::MemorySink sink;
  {
    obs::TelemetrySampler sampler(sink, {.interval_ms = 60000,
                                         .process_memory = false});
    sampler.start();
  }  // destructor must join the sampler thread
  EXPECT_EQ(sink.lines().size(), 2u);
  const auto first = obs::json_parse(sink.lines().front());
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->find("rss_bytes"), nullptr);  // process_memory off
}

TEST(MemoryReport, AggregatesSnapshotsAndSummaries) {
  std::istringstream in(
      "{\"type\":\"telemetry_snapshot\",\"seq\":0,\"elapsed_ms\":0,"
      "\"rss_bytes\":1000,\"seen_bytes\":64,\"seen_bytes_peak\":64}\n"
      "not json at all\n"
      "{\"type\":\"telemetry_snapshot\",\"seq\":1,\"elapsed_ms\":10,"
      "\"rss_bytes\":900,\"seen_bytes\":32,\"seen_bytes_peak\":96}\n"
      "{\"type\":\"checker_summary\",\"tracked_peak_bytes\":5000,"
      "\"bytes_per_state\":125.0}\n"
      "{\"type\":\"checker_summary\",\"tracked_peak_bytes\":4000,"
      "\"bytes_per_state\":99.0}\n"
      "{\"type\":\"engine_run\",\"peak_channel_bytes\":777}\n"
      "{\"type\":\"campaign_row\",\"row\":{\"peak_channel_bytes\":888}}\n");
  const obs::MemoryReport report = obs::memory_report(in);
  EXPECT_EQ(report.snapshots, 2u);
  EXPECT_EQ(report.checker_summaries, 2u);
  EXPECT_EQ(report.tracked_peak_bytes, 5000u);
  EXPECT_DOUBLE_EQ(report.bytes_per_state, 125.0);
  EXPECT_EQ(report.peak_channel_bytes, 888u);
  ASSERT_EQ(report.series.size(), 3u);  // rss, seen, seen_peak
  bool found = false;
  for (const obs::MemorySeries& s : report.series) {
    if (s.name == "rss_bytes") {
      found = true;
      EXPECT_EQ(s.last, 900u);
      EXPECT_EQ(s.peak, 1000u);
      EXPECT_EQ(s.samples, 2u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(MemoryReport, EmptyStreamIsZero) {
  std::istringstream in("");
  const obs::MemoryReport report = obs::memory_report(in);
  EXPECT_EQ(report.snapshots, 0u);
  EXPECT_TRUE(report.series.empty());
  EXPECT_EQ(report.tracked_peak_bytes, 0u);
}

TEST(PoolReport, ReadsSummaryAndTimeline) {
  std::istringstream in(
      "{\"type\":\"telemetry_snapshot\",\"elapsed_ms\":0,"
      "\"pool.queue_depth\":12,\"pool.tasks_executed\":3}\n"
      "{\"type\":\"telemetry_snapshot\",\"elapsed_ms\":5,"
      "\"rss_bytes\":1}\n"
      "{\"type\":\"telemetry_snapshot\",\"elapsed_ms\":10,"
      "\"pool.queue_depth\":0,\"pool.tasks_executed\":40}\n"
      "{\"type\":\"pool_summary\",\"workers\":4,\"tasks_executed\":40,"
      "\"busy_us\":300,\"idle_us\":100,\"utilization\":0.75,"
      "\"queue_depth_peak\":12,\"per_worker\":["
      "{\"worker\":0,\"tasks\":10,\"busy_us\":75,\"idle_us\":25},"
      "{\"worker\":1,\"tasks\":30,\"busy_us\":225,\"idle_us\":75}]}\n");
  const obs::PoolReport report = obs::pool_report(in);
  EXPECT_TRUE(report.has_summary);
  EXPECT_EQ(report.workers, 4u);
  EXPECT_EQ(report.tasks_executed, 40u);
  EXPECT_DOUBLE_EQ(report.utilization, 0.75);
  EXPECT_EQ(report.queue_depth_peak, 12u);
  ASSERT_EQ(report.per_worker.size(), 2u);
  EXPECT_EQ(report.per_worker[1].tasks, 30u);
  // Only snapshots carrying pool probes enter the timeline.
  ASSERT_EQ(report.timeline.size(), 2u);
  EXPECT_EQ(report.timeline[0].queue_depth, 12u);
  EXPECT_EQ(report.timeline[1].elapsed_ms, 10u);
  EXPECT_EQ(report.timeline[1].tasks_executed, 40u);
}

TEST(PoolReport, UtilizationDerivedWhenAbsent) {
  std::istringstream in(
      "{\"type\":\"pool_summary\",\"workers\":2,\"tasks_executed\":8,"
      "\"busy_us\":60,\"idle_us\":40}\n");
  const obs::PoolReport report = obs::pool_report(in);
  EXPECT_TRUE(report.has_summary);
  EXPECT_DOUBLE_EQ(report.utilization, 0.6);
}

}  // namespace
