#include <gtest/gtest.h>

#include "spp/gadgets.hpp"
#include "support/error.hpp"
#include "trace/recording.hpp"
#include "trace/trace.hpp"

namespace commroute::trace {
namespace {

Assignment asg(const spp::Instance& inst,
               const std::vector<std::string>& paths) {
  Assignment out;
  for (const auto& p : paths) {
    out.push_back(inst.parse_path(p));
  }
  return out;
}

TEST(Trace, RecordsInOrder) {
  const spp::Instance inst = spp::disagree();
  Trace t(asg(inst, {"d", "", ""}));
  t.record(asg(inst, {"d", "xd", ""}));
  t.record(asg(inst, {"d", "xd", "yd"}));
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.at(1), asg(inst, {"d", "xd", ""}));
  EXPECT_EQ(t.back(), asg(inst, {"d", "xd", "yd"}));
  EXPECT_THROW(t.at(3), PreconditionError);
}

TEST(Trace, ChangeCountIgnoresStutters) {
  const spp::Instance inst = spp::disagree();
  Trace t(asg(inst, {"d", "", ""}));
  t.record(asg(inst, {"d", "", ""}));
  t.record(asg(inst, {"d", "xd", ""}));
  t.record(asg(inst, {"d", "xd", ""}));
  t.record(asg(inst, {"d", "xd", "yd"}));
  EXPECT_EQ(t.change_count(), 2u);
}

TEST(Trace, CollapsedRemovesConsecutiveDuplicates) {
  const spp::Instance inst = spp::disagree();
  Trace t(asg(inst, {"d", "", ""}));
  t.record(asg(inst, {"d", "", ""}));
  t.record(asg(inst, {"d", "xd", ""}));
  t.record(asg(inst, {"d", "", ""}));
  const auto collapsed = t.collapsed();
  ASSERT_EQ(collapsed.size(), 3u);
  EXPECT_EQ(collapsed[0], asg(inst, {"d", "", ""}));
  EXPECT_EQ(collapsed[1], asg(inst, {"d", "xd", ""}));
  EXPECT_EQ(collapsed[2], asg(inst, {"d", "", ""}));
}

TEST(Trace, SettledDetectsStableSuffix) {
  const spp::Instance inst = spp::disagree();
  Trace t(asg(inst, {"d", "", ""}));
  t.record(asg(inst, {"d", "xd", ""}));
  t.record(asg(inst, {"d", "xd", ""}));
  t.record(asg(inst, {"d", "xd", ""}));
  EXPECT_TRUE(t.settled(3));
  EXPECT_FALSE(t.settled(4));
  EXPECT_THROW(t.settled(0), PreconditionError);
}

TEST(Trace, ToStringRendersColumns) {
  const spp::Instance inst = spp::disagree();
  Trace t(asg(inst, {"d", "", ""}));
  t.record(asg(inst, {"d", "xd", ""}));
  const std::string all = t.to_string(inst);
  EXPECT_NE(all.find("pi_x"), std::string::npos);
  EXPECT_NE(all.find("xd"), std::string::npos);
  const std::string only_x = t.to_string(inst, {"x"});
  EXPECT_NE(only_x.find("pi_x"), std::string::npos);
  EXPECT_EQ(only_x.find("pi_y"), std::string::npos);
}

TEST(Recording, CapturesStepsEffectsAndFinalState) {
  const spp::Instance inst = spp::disagree();
  const NodeId d = inst.graph().node("d");
  const NodeId x = inst.graph().node("x");
  model::ActivationScript script{model::read_one_step(inst, d, x),
                                 model::read_one_step(inst, x, d)};
  const Recording rec = record_script(inst, script);
  EXPECT_EQ(rec.trace.size(), 3u);
  ASSERT_EQ(rec.steps.size(), 2u);
  EXPECT_EQ(rec.steps[0].step.node(), d);
  EXPECT_EQ(rec.steps[0].effect.sent.size(), 2u);
  EXPECT_EQ(rec.steps[1].effect.nodes[0].new_assignment,
            inst.parse_path("xd"));
  EXPECT_EQ(rec.final_state.assignment(x), inst.parse_path("xd"));
}

TEST(Recording, EnforcesModelWhenAsked) {
  const spp::Instance inst = spp::disagree();
  model::ActivationScript script{model::read_every_one_step(
      inst, inst.graph().node("x"))};
  EXPECT_NO_THROW(record_script(inst, script));
  EXPECT_NO_THROW(
      record_script(inst, script, model::Model::parse("REO")));
  EXPECT_THROW(record_script(inst, script, model::Model::parse("R1O")),
               PreconditionError);
}

}  // namespace
}  // namespace commroute::trace
