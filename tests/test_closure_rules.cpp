// Isolated tests of the Figure 1 / Figure 2 transitivity rules: the
// closure engine applied to tiny synthetic fact sets must derive exactly
// the consequences the paper's diagrams describe.
#include <gtest/gtest.h>

#include "realization/closure.hpp"

namespace commroute::realization {
namespace {

using model::Model;

Fact lower(const char* a, const char* b, Strength s) {
  return Fact{Model::parse(a), Model::parse(b), FactKind::kLowerBound, s,
              "synthetic"};
}

Fact upper(const char* a, const char* b, Strength s) {
  return Fact{Model::parse(a), Model::parse(b), FactKind::kUpperBound, s,
              "synthetic"};
}

// Fig. 1 (rule P): composing realizations takes the weaker sense.
TEST(ClosureRules, PositiveCompositionTakesTheMinimum) {
  const RealizationTable t = RealizationTable::closure(
      {lower("R1O", "RMS", Strength::kRepetition),
       lower("RMS", "UEA", Strength::kExact)});
  const RelationBound& cell =
      t.cell(Model::parse("R1O"), Model::parse("UEA"));
  EXPECT_EQ(cell.lo, Strength::kRepetition);
  EXPECT_EQ(cell.hi, Strength::kExact);  // upper bound untouched
}

TEST(ClosureRules, PositiveCompositionChains) {
  const RealizationTable t = RealizationTable::closure(
      {lower("R1O", "RMO", Strength::kExact),
       lower("RMO", "RES", Strength::kSubsequence),
       lower("RES", "UMS", Strength::kRepetition)});
  EXPECT_EQ(t.cell(Model::parse("R1O"), Model::parse("UMS")).lo,
            Strength::kSubsequence);
}

// Fig. 2 left (rule N1): push the tail of a non-realization forward.
// M2 realizes M1 strongly; M3 cannot realize M1 => M3 cannot realize M2.
TEST(ClosureRules, NegativeRuleN1) {
  const RealizationTable t = RealizationTable::closure(
      {lower("R1O", "RMS", Strength::kExact),        // M2 realizes M1
       upper("R1O", "REA", Strength::kNotPreserving)});  // M3 misses M1
  EXPECT_EQ(t.cell(Model::parse("RMS"), Model::parse("REA")).hi,
            Strength::kNotPreserving);
}

TEST(ClosureRules, NegativeRuleN1NeedsAStrongEnoughPremise) {
  // If M2 realizes M1 only at the sense that is *not* excluded for M3,
  // nothing follows. Here M3 can't realize M1 beyond subsequence, and M2
  // realizes M1 as a subsequence only: no conclusion about M2-in-M3.
  const RealizationTable t = RealizationTable::closure(
      {lower("R1O", "RMS", Strength::kSubsequence),
       upper("R1O", "REA", Strength::kSubsequence)});
  EXPECT_EQ(t.cell(Model::parse("RMS"), Model::parse("REA")).hi,
            Strength::kExact);
}

// Fig. 2 right (rule N2): pull the head of a non-realization backward.
// M3 realizes M1 strongly; M3 cannot realize M2 => M1 cannot realize M2.
TEST(ClosureRules, NegativeRuleN2) {
  const RealizationTable t = RealizationTable::closure(
      {lower("R1O", "UMS", Strength::kExact),          // M3 realizes M1
       upper("REA", "UMS", Strength::kRepetition)});   // M3 misses M2
  EXPECT_EQ(t.cell(Model::parse("REA"), Model::parse("R1O")).hi,
            Strength::kRepetition);
}

TEST(ClosureRules, NegativeRuleN2PartialStrength) {
  // The derived upper bound is the excluded sense, not stronger.
  const RealizationTable t = RealizationTable::closure(
      {lower("R1O", "UMS", Strength::kRepetition),
       upper("REA", "UMS", Strength::kSubsequence)});
  EXPECT_EQ(t.cell(Model::parse("REA"), Model::parse("R1O")).hi,
            Strength::kSubsequence);
}

// The classic Cor. 3.14 derivation shape end to end: REA >=3 in R1S
// (through M-to-1 expansion) plus REA <=2 in R1O forces R1S <=2 in R1O.
TEST(ClosureRules, Corollary314Shape) {
  const RealizationTable t = RealizationTable::closure(
      {lower("REA", "R1S", Strength::kRepetition),
       upper("REA", "R1O", Strength::kSubsequence),
       lower("R1S", "R1O", Strength::kSubsequence)});
  const RelationBound& cell =
      t.cell(Model::parse("R1S"), Model::parse("R1O"));
  EXPECT_EQ(cell.lo, Strength::kSubsequence);
  EXPECT_EQ(cell.hi, Strength::kSubsequence);
  EXPECT_TRUE(cell.known_exactly());
}

TEST(ClosureRules, ContradictoryFactsThrow) {
  EXPECT_THROW(RealizationTable::closure(
                   {lower("R1O", "RMS", Strength::kExact),
                    upper("R1O", "RMS", Strength::kSubsequence)}),
               PreconditionError);
}

TEST(ClosureRules, IndirectContradictionsAreDetected) {
  // lo(A,B)=4 and lo(B,C)=4 force lo(A,C)=4, clashing with hi(A,C)=2.
  EXPECT_THROW(RealizationTable::closure(
                   {lower("R1O", "RMO", Strength::kExact),
                    lower("RMO", "RMS", Strength::kExact),
                    upper("R1O", "RMS", Strength::kSubsequence)}),
               PreconditionError);
}

TEST(ClosureRules, ProvenanceTracksRuleApplications) {
  const RealizationTable t = RealizationTable::closure(
      {lower("R1O", "RMO", Strength::kExact),
       lower("RMO", "RMS", Strength::kRepetition)});
  const RelationBound& cell =
      t.cell(Model::parse("R1O"), Model::parse("RMS"));
  EXPECT_NE(cell.lo_source.find("transitivity P"), std::string::npos);
  EXPECT_NE(cell.lo_source.find("RMO"), std::string::npos);
}

}  // namespace
}  // namespace commroute::realization
