#include <gtest/gtest.h>

#include "checker/minimize.hpp"
#include "spp/builder.hpp"
#include "spp/dispute_wheel.hpp"
#include "spp/gadgets.hpp"
#include "spp/random_gen.hpp"
#include "support/error.hpp"

namespace commroute::checker {
namespace {

using model::Model;

const ExploreOptions kOptions{.max_channel_length = 3,
                              .max_states = 60000};

TEST(Minimize, DisagreeIsAlreadyMinimal) {
  const auto result = minimize_oscillating_instance(
      spp::disagree(), Model::parse("R1O"), kOptions);
  EXPECT_EQ(result.removed_paths, 0u);
  EXPECT_TRUE(result.minimal);
  EXPECT_EQ(result.instance.permitted_path_count(), 4u);
}

TEST(Minimize, RejectsNonOscillatingInstances) {
  EXPECT_THROW(minimize_oscillating_instance(spp::good_gadget(),
                                             Model::parse("R1O"),
                                             kOptions),
               PreconditionError);
  // DISAGREE cannot oscillate under REA at all (Thm. 3.8).
  EXPECT_THROW(minimize_oscillating_instance(spp::disagree(),
                                             Model::parse("REA"),
                                             kOptions),
               PreconditionError);
}

/// DISAGREE plus a spectator node w and a redundant third route at x.
spp::Instance padded_disagree() {
  spp::InstanceBuilder b("d");
  b.edge("x", "d").edge("y", "d").edge("x", "y");
  b.edge("w", "d").edge("w", "x");
  b.prefer("x", {"xyd", "xd", "xwd"});
  b.prefer("y", {"yxd", "yd"});
  b.prefer("w", {"wd"});
  return b.build();
}

TEST(Minimize, StripsRedundantPathsAndStillOscillates) {
  const auto result = minimize_oscillating_instance(
      padded_disagree(), Model::parse("R1O"), kOptions);
  EXPECT_GT(result.removed_paths, 0u);
  EXPECT_TRUE(explore(result.instance, Model::parse("R1O"), kOptions)
                  .oscillation_found);
  // The redundant xwd route is gone; the DISAGREE core survives.
  const NodeId x = result.instance.graph().node("x");
  EXPECT_FALSE(result.instance.is_permitted(
      x, result.instance.parse_path("xwd")));
  EXPECT_TRUE(result.instance.is_permitted(
      x, result.instance.parse_path("xyd")));
}

TEST(Minimize, ResultIsLocallyMinimal) {
  const auto result = minimize_oscillating_instance(
      padded_disagree(), Model::parse("R1O"), kOptions);
  ASSERT_TRUE(result.minimal);
  // The minimized instance retains a dispute wheel (necessary for any
  // oscillation), and is exactly the DISAGREE core plus single-path
  // spectators.
  EXPECT_FALSE(spp::is_dispute_wheel_free(result.instance));
  const NodeId x = result.instance.graph().node("x");
  const NodeId y = result.instance.graph().node("y");
  EXPECT_EQ(result.instance.permitted(x).size(), 2u);
  EXPECT_EQ(result.instance.permitted(y).size(), 2u);
}

TEST(Minimize, ShrinksRandomDivergentInstances) {
  Rng rng(12);
  spp::RandomInstanceParams params;
  params.nodes = 4;
  params.extra_edge_prob = 0.5;
  params.max_paths_per_node = 4;
  int minimized = 0;
  for (int trial = 0; trial < 40 && minimized < 2; ++trial) {
    const spp::Instance inst = spp::random_policy(rng, params);
    if (spp::is_dispute_wheel_free(inst)) {
      continue;
    }
    if (!explore(inst, Model::parse("R1O"), kOptions).oscillation_found) {
      continue;
    }
    const auto result = minimize_oscillating_instance(
        inst, Model::parse("R1O"), kOptions);
    EXPECT_LE(result.instance.permitted_path_count(),
              inst.permitted_path_count());
    // A DISAGREE-like core needs at least two nodes with two choices.
    EXPECT_GE(result.instance.permitted_path_count(), 4u);
    ++minimized;
  }
  EXPECT_GT(minimized, 0);
}

}  // namespace
}  // namespace commroute::checker
