#include <gtest/gtest.h>

#include "engine/executor.hpp"
#include "engine/scheduler.hpp"
#include "engine/state.hpp"
#include "model/fairness.hpp"
#include "spp/gadgets.hpp"
#include "support/error.hpp"

namespace commroute::engine {
namespace {

using model::Model;

TEST(ScriptedScheduler, PlaysInOrderThenExhausts) {
  const spp::Instance inst = spp::disagree();
  const NodeId d = inst.graph().node("d");
  const NodeId x = inst.graph().node("x");
  model::ActivationScript script{model::read_one_step(inst, d, x),
                                 model::read_one_step(inst, x, d)};
  ScriptedScheduler sched(script);
  NetworkState state(inst);
  EXPECT_FALSE(sched.exhausted());
  EXPECT_EQ(*sched.remaining(), 2u);
  EXPECT_EQ(sched.next(state).node(), d);
  EXPECT_EQ(sched.next(state).node(), x);
  EXPECT_TRUE(sched.exhausted());
  EXPECT_THROW(sched.next(state), PreconditionError);
}

TEST(ScriptedScheduler, LoopsFromGivenIndex) {
  const spp::Instance inst = spp::disagree();
  const NodeId d = inst.graph().node("d");
  const NodeId x = inst.graph().node("x");
  const NodeId y = inst.graph().node("y");
  model::ActivationScript script{model::read_one_step(inst, d, x),
                                 model::read_one_step(inst, x, d),
                                 model::read_one_step(inst, y, d)};
  ScriptedScheduler sched(script, 1);
  NetworkState state(inst);
  EXPECT_FALSE(sched.remaining().has_value());
  EXPECT_EQ(sched.next(state).node(), d);
  EXPECT_EQ(sched.next(state).node(), x);
  EXPECT_EQ(sched.next(state).node(), y);
  EXPECT_EQ(sched.next(state).node(), x);  // looped
  EXPECT_EQ(sched.next(state).node(), y);
  EXPECT_FALSE(sched.exhausted());
}

TEST(ScriptedScheduler, SignatureIsPosition) {
  const spp::Instance inst = spp::disagree();
  model::ActivationScript script{
      model::read_one_step(inst, inst.graph().node("d"),
                           inst.graph().node("x"))};
  ScriptedScheduler sched(script, 0);
  NetworkState state(inst);
  const auto sig0 = sched.signature();
  sched.next(state);
  const auto sig1 = sched.signature();
  ASSERT_TRUE(sig0.has_value());
  EXPECT_EQ(*sig0, *sig1);  // looped back to position 0
}

class SchedulerModelTest : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerModelTest, RoundRobinProducesOnlyLegalSteps) {
  const Model m = Model::from_index(GetParam());
  const spp::Instance inst = spp::example_a2();
  RoundRobinScheduler sched(m, inst);
  NetworkState state(inst);
  for (int i = 0; i < 200; ++i) {
    const model::ActivationStep step = sched.next(state);
    model::require_step_allowed(m, inst, step);
    execute_step(state, step);
  }
}

TEST_P(SchedulerModelTest, RoundRobinIsFair) {
  const Model m = Model::from_index(GetParam());
  const spp::Instance inst = spp::disagree();
  RoundRobinScheduler sched(m, inst);
  NetworkState state(inst);
  model::FairnessMonitor fairness(inst.graph().channel_count());
  const std::size_t period = sched.period();
  for (std::size_t i = 0; i < 3 * period; ++i) {
    fairness.begin_step();
    const model::ActivationStep step = sched.next(state);
    for (const auto& read : step.reads) {
      fairness.attempt(read.channel);
    }
    execute_step(state, step);
  }
  EXPECT_TRUE(fairness.all_channels_attempted());
  EXPECT_LE(fairness.max_attempt_gap(), period);
}

TEST_P(SchedulerModelTest, RandomFairProducesOnlyLegalSteps) {
  const Model m = Model::from_index(GetParam());
  const spp::Instance inst = spp::example_a2();
  RandomFairScheduler sched(m, inst, Rng(GetParam()),
                            {.drop_prob = 0.3, .sweep_period = 16});
  NetworkState state(inst);
  for (int i = 0; i < 300; ++i) {
    const model::ActivationStep step = sched.next(state);
    model::require_step_allowed(m, inst, step);
    execute_step(state, step);
  }
}

TEST_P(SchedulerModelTest, RandomFairAttemptsEveryChannel) {
  const Model m = Model::from_index(GetParam());
  const spp::Instance inst = spp::disagree();
  RandomFairScheduler sched(m, inst, Rng(1000 + GetParam()),
                            {.drop_prob = 0.2, .sweep_period = 8});
  NetworkState state(inst);
  model::FairnessMonitor fairness(inst.graph().channel_count());
  for (int i = 0; i < 400; ++i) {
    fairness.begin_step();
    const model::ActivationStep step = sched.next(state);
    for (const auto& read : step.reads) {
      fairness.attempt(read.channel);
    }
    execute_step(state, step);
  }
  EXPECT_TRUE(fairness.all_channels_attempted());
  // A sweep of all channels happens at least every sweep_period steps, so
  // the gap is bounded by sweep_period plus the sweep length.
  EXPECT_LE(fairness.max_attempt_gap(),
            8u + inst.graph().channel_count() + inst.node_count());
}

TEST_P(SchedulerModelTest, RandomFairNeverDropsNewestMessage) {
  const Model m = Model::from_index(GetParam());
  if (m.reliable()) {
    GTEST_SKIP() << "drop discipline only applies to unreliable models";
  }
  const spp::Instance inst = spp::example_a2();
  RandomFairScheduler sched(m, inst, Rng(7),
                            {.drop_prob = 0.9, .sweep_period = 32});
  NetworkState state(inst);
  for (int i = 0; i < 500; ++i) {
    const model::ActivationStep step = sched.next(state);
    for (const auto& read : step.reads) {
      const std::size_t in_channel = state.channel(read.channel).size();
      for (const std::uint32_t dropped : read.drops) {
        EXPECT_LT(dropped, in_channel)
            << "dropped the newest message of a channel";
      }
    }
    execute_step(state, step);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, SchedulerModelTest,
                         ::testing::Range(0, model::Model::kCount),
                         [](const auto& suite_info) {
                           return Model::from_index(suite_info.param).name();
                         });

}  // namespace
}  // namespace commroute::engine
