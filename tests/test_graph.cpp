#include <gtest/gtest.h>

#include "core/graph.hpp"
#include "support/error.hpp"

namespace commroute {
namespace {

Graph triangle() {
  Graph g({"d", "x", "y"});
  g.add_edge(1, 0);
  g.add_edge(2, 0);
  g.add_edge(1, 2);
  return g;
}

TEST(Graph, Construction) {
  const Graph g = triangle();
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.channel_count(), 6u);  // two directed channels per edge
}

TEST(Graph, RejectsBadConstruction) {
  EXPECT_THROW(Graph({}), PreconditionError);
  EXPECT_THROW(Graph({"a", "a"}), PreconditionError);
  EXPECT_THROW(Graph({"a", ""}), PreconditionError);
  Graph g({"a", "b"});
  EXPECT_THROW(g.add_edge(0, 0), PreconditionError);
  EXPECT_THROW(g.add_edge(0, 2), PreconditionError);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(1, 0), PreconditionError);  // duplicate
}

TEST(Graph, EdgesAreUndirected) {
  const Graph g = triangle();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(Graph, ChannelsAreDirected) {
  const Graph g = triangle();
  const ChannelIdx xy = g.channel(1, 2);
  const ChannelIdx yx = g.channel(2, 1);
  EXPECT_NE(xy, yx);
  EXPECT_EQ(g.channel_id(xy).from, 1u);
  EXPECT_EQ(g.channel_id(xy).to, 2u);
  EXPECT_EQ(g.channel_id(yx).from, 2u);
  EXPECT_EQ(g.channel_id(yx).to, 1u);
}

TEST(Graph, InAndOutChannels) {
  const Graph g = triangle();
  // Node x (=1) has neighbors d and y: two in, two out.
  EXPECT_EQ(g.in_channels(1).size(), 2u);
  EXPECT_EQ(g.out_channels(1).size(), 2u);
  for (const ChannelIdx c : g.in_channels(1)) {
    EXPECT_EQ(g.channel_id(c).to, 1u);
  }
  for (const ChannelIdx c : g.out_channels(1)) {
    EXPECT_EQ(g.channel_id(c).from, 1u);
  }
}

TEST(Graph, NameLookups) {
  const Graph g = triangle();
  EXPECT_EQ(g.node("d"), 0u);
  EXPECT_EQ(g.node("y"), 2u);
  EXPECT_EQ(g.name(1), "x");
  EXPECT_TRUE(g.has_node("x"));
  EXPECT_FALSE(g.has_node("z"));
  EXPECT_THROW(g.node("z"), PreconditionError);
  EXPECT_EQ(g.channel_name(g.channel(1, 0)), "x->d");
}

TEST(Graph, SupportsPath) {
  const Graph g = triangle();
  EXPECT_TRUE(g.supports_path(Path{1, 2, 0}));
  EXPECT_TRUE(g.supports_path(Path{1}));
  EXPECT_TRUE(g.supports_path(Path::epsilon()));
  Graph line({"a", "b", "c"});
  line.add_edge(0, 1);
  line.add_edge(1, 2);
  EXPECT_FALSE(line.supports_path(Path{0, 2}));
}

TEST(Graph, NeighborsInInsertionOrder) {
  Graph g({"a", "b", "c", "d"});
  g.add_edge(0, 2);
  g.add_edge(0, 1);
  g.add_edge(0, 3);
  const auto& n = g.neighbors(0);
  ASSERT_EQ(n.size(), 3u);
  EXPECT_EQ(n[0], 2u);
  EXPECT_EQ(n[1], 1u);
  EXPECT_EQ(n[2], 3u);
}

TEST(Graph, ChannelIdHashAndEquality) {
  const ChannelId a{1, 2};
  const ChannelId b{1, 2};
  const ChannelId c{2, 1};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(std::hash<ChannelId>{}(a), std::hash<ChannelId>{}(c));
}

}  // namespace
}  // namespace commroute
