// EventQueue / VirtualClock determinism: (time, seq) ordering, tie
// breaking by scheduling order, and monotonic clock advancement.
#include <gtest/gtest.h>

#include "sim/event_queue.hpp"
#include "support/error.hpp"

namespace commroute::sim {
namespace {

Event at(VirtualTime t, Event::Kind kind = Event::Kind::kActivate,
         NodeId node = 0) {
  Event ev;
  ev.time = t;
  ev.kind = kind;
  ev.node = node;
  return ev;
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.push(at(30));
  q.push(at(10));
  q.push(at(20));
  EXPECT_EQ(q.pop().time, 10u);
  EXPECT_EQ(q.pop().time, 20u);
  EXPECT_EQ(q.pop().time, 30u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBreakBySchedulingOrder) {
  EventQueue q;
  q.push(at(5, Event::Kind::kActivate, 3));
  q.push(at(5, Event::Kind::kActivate, 1));
  q.push(at(5, Event::Kind::kActivate, 2));
  EXPECT_EQ(q.pop().node, 3u);
  EXPECT_EQ(q.pop().node, 1u);
  EXPECT_EQ(q.pop().node, 2u);
}

TEST(EventQueue, AssignsMonotonicSequenceNumbers) {
  EventQueue q;
  const std::uint64_t s0 = q.push(at(1));
  const std::uint64_t s1 = q.push(at(1));
  EXPECT_LT(s0, s1);
  EXPECT_EQ(q.peek().seq, s0);
}

TEST(EventQueue, InterleavedPushPopStaysOrdered) {
  EventQueue q;
  q.push(at(10));
  q.push(at(2));
  EXPECT_EQ(q.pop().time, 2u);
  q.push(at(4));
  q.push(at(4));
  EXPECT_EQ(q.pop().time, 4u);
  EXPECT_EQ(q.pop().time, 4u);
  EXPECT_EQ(q.pop().time, 10u);
}

TEST(EventQueue, TracksDepthAndBytePeaks) {
  EventQueue q;
  EXPECT_EQ(q.peak_size(), 0u);
  EXPECT_EQ(q.estimated_bytes(), 0u);
  EXPECT_EQ(q.peak_bytes(), 0u);
  q.push(at(1));
  q.push(at(2));
  q.push(at(3));
  EXPECT_EQ(q.peak_size(), 3u);
  EXPECT_EQ(q.estimated_bytes(), 3 * sizeof(Event));
  q.pop();
  q.pop();
  // The high watermark survives drains; the current estimate tracks.
  EXPECT_EQ(q.peak_size(), 3u);
  EXPECT_EQ(q.estimated_bytes(), sizeof(Event));
  EXPECT_EQ(q.peak_bytes(), 3 * sizeof(Event));
  q.push(at(4));
  q.push(at(5));
  q.push(at(6));
  q.push(at(7));
  EXPECT_EQ(q.peak_size(), 5u);
  EXPECT_EQ(q.peak_bytes(), 5 * sizeof(Event));
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), PreconditionError);
  EXPECT_THROW(q.peek(), PreconditionError);
}

TEST(VirtualClock, AdvancesMonotonically) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0u);
  clock.advance_to(5);
  clock.advance_to(5);  // same instant is fine
  EXPECT_EQ(clock.now(), 5u);
  EXPECT_THROW(clock.advance_to(4), PreconditionError);
}

}  // namespace
}  // namespace commroute::sim
