#include <gtest/gtest.h>

#include "spp/builder.hpp"
#include "spp/dispute_wheel.hpp"
#include "spp/gadgets.hpp"
#include "spp/random_gen.hpp"
#include "spp/solver.hpp"
#include "support/rng.hpp"

namespace commroute::spp {
namespace {

TEST(DisputeWheel, DisagreeWitnessIsValid) {
  const Instance inst = disagree();
  const auto wheel = find_dispute_wheel(inst);
  ASSERT_TRUE(wheel.has_value());
  ASSERT_GE(wheel->spokes.size(), 2u);
  // Verify the witness satisfies the dispute-wheel conditions.
  for (std::size_t i = 0; i < wheel->spokes.size(); ++i) {
    const WheelSpoke& spoke = wheel->spokes[i];
    const WheelSpoke& next =
        wheel->spokes[(i + 1) % wheel->spokes.size()];
    ASSERT_TRUE(inst.is_permitted(spoke.node, spoke.spoke));
    ASSERT_TRUE(inst.is_permitted(spoke.node, spoke.rim_route));
    // Rim route = R_i Q_{i+1}: proper extension of next spoke.
    EXPECT_TRUE(spoke.rim_route.has_suffix(next.spoke));
    EXPECT_GT(spoke.rim_route.size(), next.spoke.size());
    // Weakly preferred to the spoke.
    EXPECT_LE(*inst.rank(spoke.node, spoke.rim_route),
              *inst.rank(spoke.node, spoke.spoke));
  }
}

TEST(DisputeWheel, BadGadgetHasWheel) {
  EXPECT_TRUE(find_dispute_wheel(bad_gadget()).has_value());
}

TEST(DisputeWheel, GoodGadgetHasNone) {
  EXPECT_FALSE(find_dispute_wheel(good_gadget()).has_value());
}

TEST(DisputeWheel, AppendixGadgetClassification) {
  // Ex. A.2 embeds a DISAGREE between u and v, so it has a wheel (and
  // indeed can oscillate in REO/REF).
  EXPECT_FALSE(is_dispute_wheel_free(example_a2()));
  // Exs. A.3-A.5 separate *realization senses*, not convergence: they
  // converge in every model and are dispute-wheel free.
  EXPECT_TRUE(is_dispute_wheel_free(example_a3()));
  EXPECT_TRUE(is_dispute_wheel_free(example_a4()));
  EXPECT_TRUE(is_dispute_wheel_free(example_a5()));
}

TEST(DisputeWheel, ShortestPathPreferencesAreWheelFree) {
  Rng rng(5);
  for (int trial = 0; trial < 15; ++trial) {
    const Instance inst = random_shortest(rng, {.nodes = 6});
    EXPECT_TRUE(is_dispute_wheel_free(inst)) << inst.to_string();
  }
}

TEST(DisputeWheel, TreesAreWheelFree) {
  Rng rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    EXPECT_TRUE(is_dispute_wheel_free(random_tree(rng, 7)));
  }
}

TEST(DisputeWheel, NoSolutionImpliesWheelOnRandomInstances) {
  // Contrapositive of Griffin-Shepherd-Wilfong: no dispute wheel implies
  // a (unique) solution exists. So an instance without a solution must
  // have a wheel.
  Rng rng(31);
  int checked = 0;
  for (int trial = 0; trial < 60 && checked < 10; ++trial) {
    const Instance inst = random_policy(rng, {.nodes = 5});
    if (stable_assignments(inst, 1).empty()) {
      EXPECT_TRUE(find_dispute_wheel(inst).has_value())
          << inst.to_string();
      ++checked;
    }
  }
}

TEST(DisputeWheel, WheelFreeImpliesUniqueSolutionOnRandomInstances) {
  Rng rng(32);
  for (int trial = 0; trial < 25; ++trial) {
    const Instance inst = random_policy(rng, {.nodes = 5});
    if (is_dispute_wheel_free(inst)) {
      EXPECT_EQ(stable_assignments(inst).size(), 1u) << inst.to_string();
    }
  }
}

TEST(DisputeWheel, ToStringMentionsSpokes) {
  const Instance inst = disagree();
  const auto wheel = find_dispute_wheel(inst);
  ASSERT_TRUE(wheel.has_value());
  const std::string s = wheel->to_string(inst);
  EXPECT_NE(s.find("spoke"), std::string::npos);
  EXPECT_NE(s.find("rim"), std::string::npos);
}

}  // namespace
}  // namespace commroute::spp
