// Determinism and accuracy contracts of the streaming sketches: shard
// merges must be byte-identical at any shard count and merge order, and
// LogHistogram quantiles must respect the documented relative error
// bound on adversarial distributions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "obs/sketch.hpp"

namespace commroute::obs {
namespace {

/// Deterministic value stream (no std:: distribution, so the sequence
/// is pinned across standard libraries).
std::vector<std::uint64_t> lcg_stream(std::size_t n, std::uint64_t seed,
                                      std::uint64_t modulus) {
  std::vector<std::uint64_t> out;
  out.reserve(n);
  std::uint64_t x = seed;
  for (std::size_t i = 0; i < n; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    out.push_back((x >> 17) % modulus + 1);
  }
  return out;
}

/// True empirical quantile under the library's rank convention:
/// rank = max(1, ceil(q * count)), 1-indexed into the sorted sample.
std::uint64_t exact_quantile(std::vector<std::uint64_t> values, double q) {
  std::sort(values.begin(), values.end());
  const auto count = static_cast<double>(values.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * count));
  rank = std::max<std::size_t>(1, std::min(rank, values.size()));
  return values[rank - 1];
}

TEST(LogHistogram, ShardCountNeverChangesTheJsonBytes) {
  const std::vector<std::uint64_t> values =
      lcg_stream(5000, 42, 1u << 20);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{8}}) {
    std::vector<LogHistogram> parts(shards, LogHistogram(5));
    for (std::size_t i = 0; i < values.size(); ++i) {
      parts[i % shards].observe(values[i]);
    }
    // Left-to-right fold.
    LogHistogram forward(5);
    for (const LogHistogram& part : parts) {
      forward.merge_from(part);
    }
    // Reverse fold — merge order must not matter either.
    LogHistogram backward(5);
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
      backward.merge_from(*it);
    }
    LogHistogram reference(5);
    for (const std::uint64_t v : values) {
      reference.observe(v);
    }
    EXPECT_EQ(forward.to_json(), reference.to_json())
        << shards << " shards";
    EXPECT_EQ(backward.to_json(), reference.to_json())
        << shards << " shards, reversed merge";
  }
}

TEST(LogHistogram, QuantileErrorBoundHoldsOnAdversarialDistributions) {
  // Adversarial inputs: values hugging bucket boundaries (2^k - 1,
  // 2^k, 2^k + 1), a geometric heavy tail, and a uniform stream.
  std::vector<std::vector<std::uint64_t>> distributions;
  std::vector<std::uint64_t> boundaries;
  for (unsigned k = 1; k < 40; ++k) {
    const std::uint64_t p = 1ull << k;
    boundaries.push_back(p - 1);
    boundaries.push_back(p);
    boundaries.push_back(p + 1);
  }
  distributions.push_back(boundaries);
  std::vector<std::uint64_t> geometric;
  std::uint64_t g = 1;
  for (int i = 0; i < 40; ++i) {
    for (int r = 0; r < 64 >> (i / 8); ++r) {
      geometric.push_back(g);
    }
    g = g * 3 + 1;
  }
  distributions.push_back(geometric);
  distributions.push_back(lcg_stream(20000, 7, 1ull << 32));

  for (const unsigned bits : {3u, 5u, 7u}) {
    const double bound = 1.0 / static_cast<double>(1u << bits);
    for (const auto& values : distributions) {
      LogHistogram hist(bits);
      for (const std::uint64_t v : values) {
        hist.observe(v);
      }
      EXPECT_DOUBLE_EQ(hist.relative_error_bound(), bound);
      for (const double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
        const std::uint64_t truth = exact_quantile(values, q);
        const std::uint64_t est = hist.quantile(q);
        ASSERT_GE(est, truth) << "q=" << q << " bits=" << bits;
        const double rel =
            static_cast<double>(est - truth) / static_cast<double>(truth);
        ASSERT_LT(rel, bound) << "q=" << q << " bits=" << bits
                              << " est=" << est << " truth=" << truth;
      }
    }
  }
}

TEST(LogHistogram, SmallValuesAreExactAndMaxIsClamped) {
  LogHistogram hist(5);
  for (std::uint64_t v = 1; v <= 31; ++v) {
    hist.observe(v);
  }
  // Below 2^precision_bits every value has its own bucket.
  EXPECT_EQ(hist.quantile(0.5), 16u);
  EXPECT_EQ(hist.quantile(1.0), 31u);
  hist.observe(1000003);
  // The top quantile reports the exact observed maximum, not the
  // bucket's upper bound.
  EXPECT_EQ(hist.quantile(1.0), 1000003u);
  EXPECT_EQ(hist.max(), 1000003u);
}

TEST(LogHistogram, MergeRequiresMatchingPrecision) {
  LogHistogram a(5);
  LogHistogram b(7);
  a.observe(3);
  b.observe(3);
  EXPECT_THROW(a.merge_from(b), std::exception);
}

TEST(TopK, PartitioningNeverChangesTheJsonBytesWithinCapacity) {
  // 12 distinct keys, capacity 16: merges are exact, so any sharding
  // of the stream yields identical bytes.
  const std::vector<std::uint64_t> values = lcg_stream(4000, 99, 12);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{8}}) {
    std::vector<TopK> parts(shards, TopK(16));
    for (std::size_t i = 0; i < values.size(); ++i) {
      parts[i % shards].add(values[i]);
    }
    TopK merged(16);
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
      merged.merge_from(*it);
    }
    TopK reference(16);
    for (const std::uint64_t v : values) {
      reference.add(v);
    }
    EXPECT_EQ(merged.to_json(), reference.to_json()) << shards << " shards";
    EXPECT_EQ(merged.total_weight(), values.size());
  }
}

TEST(TopK, HeavyHittersSurviveEvictionWithBoundedError) {
  TopK top(4);
  // Two heavy keys drowned in 64 singleton keys.
  for (int i = 0; i < 300; ++i) {
    top.add(1);
  }
  for (int i = 0; i < 200; ++i) {
    top.add(2);
  }
  for (std::uint64_t noise = 100; noise < 164; ++noise) {
    top.add(noise);
  }
  const auto entries = top.top();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[0].key, 1u);
  EXPECT_EQ(entries[1].key, 2u);
  // Space-saving invariant: count - error <= true frequency <= count.
  EXPECT_GE(entries[0].count, 300u);
  EXPECT_LE(entries[0].count - entries[0].error, 300u);
  EXPECT_GE(entries[1].count, 200u);
  EXPECT_LE(entries[1].count - entries[1].error, 200u);
}

TEST(ReservoirSample, PartitionAndOrderInvariant) {
  std::vector<std::pair<std::uint64_t, std::string>> items;
  for (std::uint64_t id = 0; id < 500; ++id) {
    items.emplace_back(id, "item-" + std::to_string(id));
  }
  ReservoirSample reference(32, 1234);
  for (const auto& [id, value] : items) {
    reference.add(id, value);
  }
  // Reverse arrival order, two shards.
  ReservoirSample a(32, 1234);
  ReservoirSample b(32, 1234);
  for (auto it = items.rbegin(); it != items.rend(); ++it) {
    ((it->first % 2 == 0) ? a : b).add(it->first, it->second);
  }
  a.merge_from(b);
  EXPECT_EQ(a.to_json(), reference.to_json());
  EXPECT_EQ(a.seen(), 500u);
  EXPECT_EQ(a.items().size(), 32u);
}

TEST(Sketch, EstimatedBytesAreElementDerived) {
  LogHistogram hist(5);
  TopK top(8);
  const std::uint64_t hist_empty = hist.estimated_bytes();
  const std::uint64_t top_empty = top.estimated_bytes();
  for (std::uint64_t v = 1; v <= 100; ++v) {
    hist.observe(v * 17);
    top.add(v % 5);
  }
  EXPECT_GT(hist.estimated_bytes(), hist_empty);
  EXPECT_GT(top.estimated_bytes(), top_empty);
  // Re-observing existing buckets/keys must not grow the estimate:
  // bytes track element counts, not stream length.
  const std::uint64_t hist_now = hist.estimated_bytes();
  const std::uint64_t top_now = top.estimated_bytes();
  for (std::uint64_t v = 1; v <= 100; ++v) {
    hist.observe(v * 17);
    top.add(v % 5);
  }
  EXPECT_EQ(hist.estimated_bytes(), hist_now);
  EXPECT_EQ(top.estimated_bytes(), top_now);
}

}  // namespace
}  // namespace commroute::obs
