// Cross-cutting property tests tying the subsystems together.
#include <gtest/gtest.h>

#include "checker/explorer.hpp"
#include "engine/executor.hpp"
#include "engine/runner.hpp"
#include "model/model.hpp"
#include "realization/closure.hpp"
#include "realization/paper_data.hpp"
#include "spp/gadgets.hpp"
#include "spp/random_gen.hpp"
#include "spp/solver.hpp"
#include "trace/recording.hpp"
#include "trace/seq_match.hpp"

namespace commroute {
namespace {

using model::Model;

// Every fair execution that converges must end in a stable, consistent
// path assignment — across random instances and all 24 models.
class ConvergenceIsStableTest : public ::testing::TestWithParam<int> {};

TEST_P(ConvergenceIsStableTest, FairConvergenceEndsInAStableSolution) {
  const Model m = Model::from_index(GetParam());
  Rng rng(900 + GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    const spp::Instance inst = spp::random_policy(rng, {.nodes = 5});
    engine::RandomFairScheduler sched(
        m, inst, rng.split(),
        {.drop_prob = m.reliable() ? 0.0 : 0.2, .sweep_period = 8});
    const auto run = engine::run(inst, sched,
                                 {.max_steps = 30000,
                                  .record_trace = false});
    if (run.outcome == engine::Outcome::kConverged) {
      EXPECT_TRUE(spp::is_solution(inst, run.final_assignment))
          << m.name() << "\n"
          << inst.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ConvergenceIsStableTest,
                         ::testing::Range(0, Model::kCount),
                         [](const auto& suite_info) {
                           return Model::from_index(suite_info.param).name();
                         });

// The checker's quiescent outcomes under reliable models are exactly
// stable solutions.
TEST(Properties, ReliableQuiescentStatesAreStableSolutions) {
  for (const auto make :
       {spp::disagree, spp::good_gadget, spp::example_a4}) {
    const spp::Instance inst = make();
    for (const char* name : {"REA", "REO", "RMS"}) {
      const auto r = checker::explore(inst, Model::parse(name),
                                      {.max_channel_length = 3,
                                       .max_states = 120000});
      for (const auto& q : r.quiescent_assignments) {
        EXPECT_TRUE(spp::is_solution(inst, q)) << name;
      }
    }
  }
}

// Dropping every copy of a message forever is unfair; our schedulers
// never do it, so U-model runs that converge satisfy the drop clause.
TEST(Properties, FairUnreliableRunsLeaveNoOutstandingDrops) {
  Rng rng(42);
  for (int trial = 0; trial < 5; ++trial) {
    const spp::Instance inst = spp::random_shortest(rng, {.nodes = 6});
    engine::RandomFairScheduler sched(Model::parse("UMS"), inst,
                                      rng.split(),
                                      {.drop_prob = 0.4,
                                       .sweep_period = 8});
    const auto run = engine::run(inst, sched, {.max_steps = 50000});
    ASSERT_EQ(run.outcome, engine::Outcome::kConverged);
    EXPECT_EQ(run.outstanding_drops, 0u);
  }
}

// The published Figures 3 and 4 are internally consistent: closing them
// under the transitivity rules produces no contradiction. (This validates
// our transcription as much as the matrices.)
TEST(Properties, PublishedMatricesAreTransitivelyConsistent) {
  std::vector<realization::Fact> facts;
  for (const Model& a : Model::all()) {
    for (const Model& b : Model::all()) {
      if (a == b) {
        continue;
      }
      const realization::RelationBound bound =
          realization::paper_bound(a, b);
      if (realization::level(bound.lo) > 0) {
        facts.push_back({a, b, realization::FactKind::kLowerBound,
                         bound.lo, "published"});
      }
      if (realization::level(bound.hi) < 4) {
        facts.push_back({a, b, realization::FactKind::kUpperBound,
                         bound.hi, "published"});
      }
    }
  }
  EXPECT_NO_THROW(realization::RealizationTable::closure(facts));
}

// Step-level containments behind Prop. 3.3: every legal step of the
// contained model is legal in the containing model.
TEST(Properties, StepContainmentLattice) {
  const spp::Instance inst = spp::example_a2();
  Rng rng(77);

  const auto contains = [](const Model& small, const Model& big) {
    // Reliability: R steps are U steps.
    const bool rel_ok =
        small.reliability == big.reliability ||
        big.reliability == model::Reliability::kUnreliable;
    // Neighbors: 1 and E steps are M steps.
    const bool nb_ok =
        small.neighbors == big.neighbors ||
        big.neighbors == model::NeighborMode::kMultiple;
    // Messages: O and A steps are F steps; O, A, F steps are S steps.
    const bool msg_ok =
        small.messages == big.messages ||
        (big.messages == model::MessageMode::kForced &&
         small.messages != model::MessageMode::kSome) ||
        big.messages == model::MessageMode::kSome;
    return rel_ok && nb_ok && msg_ok;
  };

  for (const Model& small : Model::all()) {
    // Sample steps of `small` from a running execution.
    engine::RandomFairScheduler sched(small, inst, rng.split(),
                                      {.drop_prob = 0.3});
    engine::NetworkState state(inst);
    std::vector<model::ActivationStep> sample;
    for (int i = 0; i < 25; ++i) {
      const auto step = sched.next(state);
      engine::execute_step(state, step);
      sample.push_back(step);
    }
    for (const Model& big : Model::all()) {
      if (!contains(small, big)) {
        continue;
      }
      for (const auto& step : sample) {
        EXPECT_TRUE(model::step_allowed(big, inst, step))
            << small.name() << " step rejected by " << big.name();
      }
    }
  }
}

// Self-realization sanity: replaying a recording yields the identical
// trace (the engine is deterministic).
TEST(Properties, ReplayIsDeterministic) {
  const spp::Instance inst = spp::example_a2();
  Rng rng(5);
  engine::RandomFairScheduler sched(Model::parse("UMS"), inst, rng,
                                    {.drop_prob = 0.3});
  engine::NetworkState state(inst);
  model::ActivationScript script;
  for (int i = 0; i < 50; ++i) {
    const auto step = sched.next(state);
    engine::execute_step(state, step);
    script.push_back(step);
  }
  const auto rec1 = trace::record_script(inst, script);
  const auto rec2 = trace::record_script(inst, script);
  EXPECT_TRUE(trace::matches_exactly(rec1.trace, rec2.trace));
  EXPECT_TRUE(rec1.final_state == rec2.final_state);
}

// Strong quiescence is terminal: executing any legal step of any model in
// a strongly quiescent state changes nothing.
TEST(Properties, StrongQuiescenceIsTerminal) {
  const spp::Instance inst = spp::good_gadget();
  engine::RoundRobinScheduler sched(Model::parse("RMS"), inst);
  const auto run = engine::run(inst, sched);
  ASSERT_EQ(run.outcome, engine::Outcome::kConverged);

  // Rebuild the final state by replay.
  engine::NetworkState state(inst);
  engine::RoundRobinScheduler replay_sched(Model::parse("RMS"), inst);
  for (std::uint64_t i = 0; i < run.steps; ++i) {
    engine::execute_step(state, replay_sched.next(state));
  }
  ASSERT_TRUE(engine::strongly_quiescent(state));

  for (NodeId v = 0; v < inst.node_count(); ++v) {
    engine::NetworkState copy = state;
    const auto effect =
        engine::execute_step(copy, model::poll_all_step(inst, v));
    EXPECT_TRUE(effect.sent.empty());
    EXPECT_TRUE(copy == state);
  }
}

}  // namespace
}  // namespace commroute
