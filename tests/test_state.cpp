#include <gtest/gtest.h>

#include "engine/state.hpp"
#include "spp/gadgets.hpp"

namespace commroute::engine {
namespace {

class StateTest : public ::testing::Test {
 protected:
  spp::Instance inst = spp::disagree();
  NodeId d = inst.graph().node("d");
  NodeId x = inst.graph().node("x");
  NodeId y = inst.graph().node("y");
};

TEST_F(StateTest, InitialStateMatchesDefinition21) {
  const NetworkState s(inst);
  // pi_d(0) = (d); everything else epsilon.
  EXPECT_EQ(s.assignment(d), Path{d});
  EXPECT_TRUE(s.assignment(x).empty());
  EXPECT_TRUE(s.assignment(y).empty());
  // rho(c; 0) = epsilon; channels empty; nothing exported.
  for (ChannelIdx c = 0; c < inst.graph().channel_count(); ++c) {
    EXPECT_TRUE(s.known(c).empty());
    EXPECT_TRUE(s.channel(c).empty());
    EXPECT_FALSE(s.last_exported(c).has_value());
  }
  EXPECT_TRUE(s.quiescent());
  EXPECT_EQ(s.messages_in_flight(), 0u);
  EXPECT_EQ(s.max_channel_length(), 0u);
}

TEST_F(StateTest, EqualityAndHashCoverAllComponents) {
  NetworkState a(inst), b(inst);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.hash(), b.hash());

  b.set_assignment(x, inst.parse_path("xd"));
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.hash(), b.hash());

  b = NetworkState(inst);
  b.set_known(0, inst.parse_path("xd"));
  EXPECT_FALSE(a == b);

  b = NetworkState(inst);
  b.mutable_channel(0).push(Message{inst.parse_path("xd"), 0});
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.hash(), b.hash());

  b = NetworkState(inst);
  b.set_last_exported(0, Path::epsilon());
  EXPECT_FALSE(a == b);
}

TEST_F(StateTest, QuiescenceTracksChannels) {
  NetworkState s(inst);
  s.mutable_channel(2).push(Message{inst.parse_path("xd"), 0});
  EXPECT_FALSE(s.quiescent());
  EXPECT_EQ(s.messages_in_flight(), 1u);
  EXPECT_EQ(s.max_channel_length(), 1u);
  s.mutable_channel(2).pop_front();
  EXPECT_TRUE(s.quiescent());
}

TEST_F(StateTest, CopySemantics) {
  NetworkState a(inst);
  a.mutable_channel(1).push(Message{inst.parse_path("yd"), 0});
  NetworkState b = a;
  EXPECT_TRUE(a == b);
  b.mutable_channel(1).pop_front();
  EXPECT_FALSE(a == b);
  EXPECT_EQ(a.channel(1).size(), 1u);  // deep copy
}

TEST_F(StateTest, ToStringShowsAssignmentsAndChannels) {
  NetworkState s(inst);
  s.set_assignment(x, inst.parse_path("xd"));
  s.mutable_channel(inst.graph().channel(x, y))
      .push(Message{inst.parse_path("xd"), 0});
  const std::string out = s.to_string();
  EXPECT_NE(out.find("x=xd"), std::string::npos);
  EXPECT_NE(out.find("x->y"), std::string::npos);
}

}  // namespace
}  // namespace commroute::engine
