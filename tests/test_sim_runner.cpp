// sim::run semantics: determinism per seed, model-legal induced steps
// across the taxonomy, virtual-time accounting, loss gating, MRAI
// batching, SimResult JSON round-trip, and byte-identical flight-recorder
// replay of a sim-induced execution.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "obs/obs.hpp"
#include "sim/sim_runner.hpp"
#include "spp/gadgets.hpp"
#include "trace/recording_io.hpp"

namespace commroute {
namespace {

using model::Model;

sim::SimOptions lossy_options(const std::string& model_name,
                              std::uint64_t seed) {
  sim::SimOptions opts;
  opts.model = Model::parse(model_name);
  opts.link.latency_us = 1000;
  opts.link.jitter_us = 300;
  opts.link.dist = sim::LatencyDist::kUniform;
  opts.link.loss_prob = 0.2;
  opts.seed = seed;
  opts.max_steps = 5000;
  return opts;
}

TEST(SimRunner, ConvergesOnGoodGadgetAndReportsVirtualTime) {
  const spp::Instance good = spp::good_gadget();
  sim::SimOptions opts;
  opts.model = Model::parse("R1O");
  const sim::SimResult result = sim::run(good, opts);
  EXPECT_EQ(result.run.outcome, engine::Outcome::kConverged);
  EXPECT_GT(result.run.steps, 0u);
  EXPECT_GT(result.virtual_end_us, 0u);
  EXPECT_GE(result.virtual_end_us, result.last_change_us);
  EXPECT_EQ(result.step_time_us.size(), result.run.steps);
  // Step times are non-decreasing.
  for (std::size_t i = 1; i < result.step_time_us.size(); ++i) {
    EXPECT_LE(result.step_time_us[i - 1], result.step_time_us[i]);
  }
  // d never flaps; every other node eventually settled.
  EXPECT_EQ(result.last_flap_us[0], 0u);
  EXPECT_EQ(result.messages_lost, 0u);
}

TEST(SimRunner, DeterministicPerSeedOnBadGadget) {
  const spp::Instance bad = spp::bad_gadget();
  const sim::SimResult a = sim::run(bad, lossy_options("U1O", 7));
  const sim::SimResult b = sim::run(bad, lossy_options("U1O", 7));
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.step_time_us, b.step_time_us);
  EXPECT_EQ(a.run.steps, b.run.steps);
  EXPECT_EQ(a.run.final_assignment, b.run.final_assignment);

  const sim::SimResult c = sim::run(bad, lossy_options("U1O", 8));
  EXPECT_NE(a.to_json(), c.to_json());  // distinct seed, distinct run
}

TEST(SimRunner, InducedStepsAreLegalAcrossTheTaxonomy) {
  // sim::run enforces the model on every induced step (engine::run
  // throws on an illegal one), so completing without a throw is the
  // assertion. Cover every (neighbor, message) shape, both reliabilities.
  const spp::Instance bad = spp::bad_gadget();
  for (const std::string name :
       {"R1O", "R1S", "R1F", "R1A", "RMO", "RMS", "RMF", "RMA", "REO",
        "RES", "REF", "REA", "U1O", "UMS", "UEF", "UEA"}) {
    sim::SimOptions opts;
    opts.model = Model::parse(name);
    opts.link.jitter_us = 700;
    opts.link.dist = sim::LatencyDist::kUniform;
    if (!opts.model.reliable()) {
      opts.link.loss_prob = 0.25;
    }
    opts.max_steps = 800;
    opts.seed = 5;
    EXPECT_NO_THROW(sim::run(bad, opts)) << name;
  }
}

TEST(SimRunner, RejectsLossUnderReliableModels) {
  const spp::Instance good = spp::good_gadget();
  sim::SimOptions opts;
  opts.model = Model::parse("RMS");
  opts.link.loss_prob = 0.1;
  EXPECT_THROW(sim::run(good, opts), PreconditionError);

  opts.link.loss_prob = 0.0;
  opts.link_overrides.push_back({0, sim::LinkModel{.loss_prob = 0.1}});
  EXPECT_THROW(sim::run(good, opts), PreconditionError);

  // The same configurations are accepted under an Unreliable model.
  opts.model = Model::parse("UMS");
  EXPECT_NO_THROW(sim::run(good, opts));
}

TEST(SimRunner, LossyRunsRecordDropsAsGComponents) {
  const spp::Instance bad = spp::bad_gadget();
  const sim::SimResult result = sim::run(bad, lossy_options("U1O", 3));
  EXPECT_GT(result.messages_lost, 0u);
  EXPECT_EQ(result.run.messages_dropped, result.messages_lost);
}

TEST(SimRunner, VirtualTimeBudgetExhausts) {
  const spp::Instance bad = spp::bad_gadget();
  sim::SimOptions opts;
  opts.model = Model::parse("R1O");  // oscillates forever on BAD-GADGET
  opts.max_virtual_us = 50000;
  opts.max_steps = 1000000;
  const sim::SimResult result = sim::run(bad, opts);
  EXPECT_EQ(result.run.outcome, engine::Outcome::kExhausted);
  EXPECT_LT(result.run.steps, 1000000u);
}

TEST(SimRunner, MraiBatchingSpacesActivations) {
  const spp::Instance good = spp::good_gadget();
  sim::SimOptions base;
  base.model = Model::parse("RMS");
  const sim::SimResult fast = sim::run(good, base);

  sim::SimOptions batched = base;
  batched.node.mrai_us = 50000;
  const sim::SimResult slow = sim::run(good, batched);
  EXPECT_EQ(slow.run.outcome, engine::Outcome::kConverged);
  // Batching coalesces arrivals: no more steps than the unbatched run,
  // but far more virtual time between them.
  EXPECT_LE(slow.run.steps, fast.run.steps);
  EXPECT_GT(slow.virtual_end_us, fast.virtual_end_us);
}

TEST(SimRunner, PerChannelOverridesSlowOneLink) {
  const spp::Instance good = spp::good_gadget();
  sim::SimOptions opts;
  opts.model = Model::parse("RMS");
  opts.link.latency_us = 100;
  sim::LinkModel slow;
  slow.latency_us = 500000;
  opts.link_overrides.push_back({0, slow});
  const sim::SimResult result = sim::run(good, opts);
  EXPECT_EQ(result.run.outcome, engine::Outcome::kConverged);
  EXPECT_GE(result.latency_max_us, 500000u);
}

TEST(SimRunner, JsonRoundTrips) {
  const spp::Instance bad = spp::bad_gadget();
  const sim::SimResult result = sim::run(bad, lossy_options("UMS", 11));
  const std::string json = result.to_json();
  const sim::SimResult parsed = sim::SimResult::from_json(json);
  EXPECT_EQ(parsed.run.outcome, result.run.outcome);
  EXPECT_EQ(parsed.run.steps, result.run.steps);
  EXPECT_EQ(parsed.virtual_end_us, result.virtual_end_us);
  EXPECT_EQ(parsed.last_change_us, result.last_change_us);
  EXPECT_EQ(parsed.events_processed, result.events_processed);
  EXPECT_EQ(parsed.run.messages_sent, result.run.messages_sent);
  EXPECT_EQ(parsed.messages_delivered, result.messages_delivered);
  EXPECT_EQ(parsed.messages_lost, result.messages_lost);
  EXPECT_EQ(parsed.latency_samples, result.latency_samples);
  EXPECT_EQ(parsed.latency_sum_us, result.latency_sum_us);
  EXPECT_EQ(parsed.last_flap_us, result.last_flap_us);
  EXPECT_EQ(parsed.to_json(), json);

  EXPECT_THROW(sim::SimResult::from_json("not json"), ParseError);
  EXPECT_THROW(sim::SimResult::from_json("{\"outcome\":\"weird\"}"),
               ParseError);
}

TEST(SimRunner, FlightRecordedRunReplaysByteIdentically) {
  const spp::Instance bad = spp::bad_gadget();
  sim::SimOptions opts = lossy_options("U1O", 21);
  opts.flight.mode = engine::FlightRecorderOptions::Mode::kFull;
  opts.flight.instance_name = "BAD-GADGET";
  const sim::SimResult result = sim::run(bad, opts);
  ASSERT_TRUE(result.run.recording.has_value());
  EXPECT_TRUE(result.run.recording->complete());
  EXPECT_EQ(result.run.recording->meta.scheduler, "sim");
  EXPECT_EQ(result.run.recording->meta.seed, 21u);

  std::istringstream in(
      trace::recording_to_jsonl(bad, *result.run.recording));
  const trace::LoadedRecording loaded = trace::load_recording_jsonl(in);
  const trace::ReplayResult replayed = trace::replay_recording(loaded);
  EXPECT_TRUE(replayed.identical);
  EXPECT_FALSE(replayed.divergence.has_value());
  EXPECT_EQ(replayed.steps_replayed, result.run.steps);
  EXPECT_EQ(replayed.trace.states(), result.run.trace.states());
}

TEST(SimRunner, EmitsSimSummaryAndMetrics) {
  const spp::Instance good = spp::good_gadget();
  obs::Registry metrics;
  obs::MemorySink sink;
  sim::SimOptions opts;
  opts.model = Model::parse("R1O");
  opts.obs.metrics = &metrics;
  opts.obs.sink = &sink;
  const sim::SimResult result = sim::run(good, opts);

  EXPECT_EQ(metrics.counter("sim.runs").value(), 1u);
  EXPECT_EQ(metrics.counter("sim.steps").value(), result.run.steps);
  EXPECT_EQ(metrics.counter("sim.events").value(),
            result.events_processed);
  // A run that processed events had queue depth, hence queue bytes.
  EXPECT_GT(result.queue_peak_events, 0u);
  EXPECT_EQ(result.queue_peak_bytes,
            result.queue_peak_events * sizeof(sim::Event));
  EXPECT_EQ(metrics.gauge("sim.queue_peak_events").value(),
            result.queue_peak_events);
  EXPECT_EQ(metrics.gauge("sim.queue_peak_bytes").value(),
            result.queue_peak_bytes);
  bool saw_summary = false;
  for (const std::string& line : sink.lines()) {
    if (line.find("\"type\":\"sim_summary\"") != std::string::npos) {
      saw_summary = true;
      EXPECT_NE(line.find("\"virtual_end_us\""), std::string::npos);
      EXPECT_NE(line.find("\"queue_peak_events\""), std::string::npos);
      EXPECT_EQ(line.find("wall"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_summary);
}

}  // namespace
}  // namespace commroute
