#include <gtest/gtest.h>

#include "spp/builder.hpp"
#include "spp/gadgets.hpp"
#include "spp/random_gen.hpp"
#include "spp/solver.hpp"
#include "support/rng.hpp"

namespace commroute::spp {
namespace {

PathAssignment parse_assignment(const Instance& inst,
                                const std::vector<std::string>& paths) {
  PathAssignment out;
  out.reserve(paths.size());
  for (const std::string& p : paths) {
    out.push_back(inst.parse_path(p));
  }
  return out;
}

TEST(Solver, ConsistencyRequiresNextHopAgreement) {
  const Instance inst = disagree();  // nodes: d, x, y
  EXPECT_TRUE(is_consistent(inst, parse_assignment(inst, {"d", "xd", "yd"})));
  EXPECT_TRUE(
      is_consistent(inst, parse_assignment(inst, {"d", "xyd", "yd"})));
  // x claims the route through y while y has the direct route withdrawn.
  EXPECT_FALSE(
      is_consistent(inst, parse_assignment(inst, {"d", "xyd", ""})));
  // Both claim the route through each other: circular, inconsistent.
  EXPECT_FALSE(
      is_consistent(inst, parse_assignment(inst, {"d", "xyd", "yxd"})));
}

TEST(Solver, ConsistencyRequiresDestinationSelfPath) {
  const Instance inst = disagree();
  PathAssignment pi = parse_assignment(inst, {"d", "xd", "yd"});
  pi[inst.destination()] = Path::epsilon();
  EXPECT_FALSE(is_consistent(inst, pi));
}

TEST(Solver, StabilityIsBestResponseFixedPoint) {
  const Instance inst = disagree();
  // (d, xd, yd): consistent but x would deviate to xyd -> unstable.
  const PathAssignment all_direct =
      parse_assignment(inst, {"d", "xd", "yd"});
  EXPECT_TRUE(is_consistent(inst, all_direct));
  EXPECT_FALSE(is_stable(inst, all_direct));

  const PathAssignment solution =
      parse_assignment(inst, {"d", "xyd", "yd"});
  EXPECT_TRUE(is_stable(inst, solution));
  EXPECT_TRUE(is_solution(inst, solution));
}

TEST(Solver, BestResponseComputesGreedyChoice) {
  const Instance inst = disagree();
  const PathAssignment from = parse_assignment(inst, {"d", "", ""});
  const PathAssignment br = best_response(inst, from);
  // With no neighbor routes, both pick the direct route via d's path.
  EXPECT_EQ(br[inst.graph().node("x")], inst.parse_path("xd"));
  EXPECT_EQ(br[inst.graph().node("y")], inst.parse_path("yd"));
}

TEST(Solver, BestResponseSkipsLoopingExtensions) {
  const Instance inst = disagree();
  // If y routes through x, x cannot extend y's path (it contains x).
  const PathAssignment from = parse_assignment(inst, {"d", "xd", "yxd"});
  const PathAssignment br = best_response(inst, from);
  EXPECT_EQ(br[inst.graph().node("x")], inst.parse_path("xd"));
}

TEST(Solver, LimitShortCircuits) {
  const Instance inst = disagree();
  EXPECT_EQ(stable_assignments(inst, 1).size(), 1u);
  EXPECT_EQ(stable_assignments(inst, 0).size(), 2u);
}

TEST(Solver, SolutionsOfRandomTreesAreUnique) {
  Rng rng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    const Instance inst = random_tree(rng, 6);
    const auto sols = stable_assignments(inst);
    ASSERT_EQ(sols.size(), 1u);
    // The unique solution assigns every node its tree path.
    for (NodeId v = 0; v < inst.node_count(); ++v) {
      if (v == inst.destination()) {
        continue;
      }
      EXPECT_EQ(sols[0][v], inst.permitted(v)[0]);
    }
  }
}

TEST(Solver, EverySolutionItFindsIsASolution) {
  Rng rng(77);
  for (int trial = 0; trial < 8; ++trial) {
    const Instance inst = random_policy(rng, {.nodes = 5});
    for (const PathAssignment& pi : stable_assignments(inst)) {
      EXPECT_TRUE(is_solution(inst, pi));
    }
  }
}

TEST(Solver, AssignmentNameFormat) {
  const Instance inst = disagree();
  EXPECT_EQ(assignment_name(inst, parse_assignment(inst, {"d", "xd", ""})),
            "(d, xd, (eps))");
}

}  // namespace
}  // namespace commroute::spp
