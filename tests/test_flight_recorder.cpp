// Flight recorder semantics in engine::run: off by default, full-record
// mode replays losslessly, the ring keeps exactly the last N steps, and
// flush-to-disk fires on non-convergence (or always, when asked) — plus
// the campaign wiring that stamps recording paths on rows.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "engine/runner.hpp"
#include "spp/gadgets.hpp"
#include "study/campaign.hpp"
#include "trace/recording_io.hpp"

namespace commroute {
namespace {

using model::Model;

engine::RunResult run_bad_gadget(const engine::FlightRecorderOptions& flight) {
  const spp::Instance bad = spp::bad_gadget();
  const Model m = Model::parse("R1O");
  engine::RoundRobinScheduler sched(m, bad);
  engine::RunOptions options;
  options.enforce_model = m;
  options.flight = flight;
  return engine::run(bad, sched, options);
}

TEST(FlightRecorder, OffByDefault) {
  const engine::RunResult run = run_bad_gadget({});
  EXPECT_EQ(run.outcome, engine::Outcome::kOscillating);
  EXPECT_FALSE(run.recording.has_value());
  EXPECT_TRUE(run.recording_path.empty());
}

TEST(FlightRecorder, FullModeCapturesAReplayableRecording) {
  engine::FlightRecorderOptions flight;
  flight.mode = engine::FlightRecorderOptions::Mode::kFull;
  const engine::RunResult run = run_bad_gadget(flight);
  ASSERT_TRUE(run.recording.has_value());
  EXPECT_TRUE(run.recording->complete());
  EXPECT_EQ(run.recording->steps.size(), run.steps);
  EXPECT_EQ(run.recording->meta.outcome, "oscillating");
  EXPECT_EQ(run.recording->meta.model, "R1O");

  const spp::Instance bad = spp::bad_gadget();
  std::istringstream in(trace::recording_to_jsonl(bad, *run.recording));
  const trace::LoadedRecording loaded = trace::load_recording_jsonl(in);
  const trace::ReplayResult replayed = trace::replay_recording(loaded);
  EXPECT_TRUE(replayed.identical);
  EXPECT_EQ(replayed.trace.collapsed(), run.trace.collapsed());
}

TEST(FlightRecorder, RingModeKeepsExactlyTheLastSteps) {
  engine::FlightRecorderOptions full;
  full.mode = engine::FlightRecorderOptions::Mode::kFull;
  const engine::RunResult reference = run_bad_gadget(full);

  engine::FlightRecorderOptions ring;
  ring.mode = engine::FlightRecorderOptions::Mode::kRing;
  ring.ring_capacity = 8;
  const engine::RunResult run = run_bad_gadget(ring);
  ASSERT_TRUE(run.recording.has_value());
  ASSERT_GT(run.steps, 8u);  // the run outlives the ring
  const trace::RecordingDoc& doc = *run.recording;

  EXPECT_EQ(doc.steps.size(), 8u);
  EXPECT_EQ(doc.meta.first_step, run.steps - 8 + 1);
  EXPECT_FALSE(doc.complete());

  // The ring window is exactly the tail of the full recording: the
  // window's initial state is pi after the last evicted step.
  const trace::RecordingDoc& ref = *reference.recording;
  ASSERT_EQ(reference.steps, run.steps);
  const std::size_t offset =
      static_cast<std::size_t>(doc.meta.first_step) - 1;
  EXPECT_EQ(doc.initial, ref.assignments[offset - 1]);
  for (std::size_t t = 0; t < doc.steps.size(); ++t) {
    EXPECT_EQ(doc.assignments[t], ref.assignments[offset + t]);
    EXPECT_EQ(doc.io[t], ref.io[offset + t]);
  }
}

TEST(FlightRecorder, FlushesToDiskOnNonConvergence) {
  const std::string path = "test_flight_recorder_flush.recording.jsonl";
  engine::FlightRecorderOptions flight;
  flight.mode = engine::FlightRecorderOptions::Mode::kFull;
  flight.flush_path = path;
  flight.instance_name = "BAD-GADGET";
  const engine::RunResult run = run_bad_gadget(flight);
  EXPECT_EQ(run.outcome, engine::Outcome::kOscillating);
  EXPECT_EQ(run.recording_path, path);

  const trace::LoadedRecording loaded = trace::load_recording_file(path);
  std::filesystem::remove(path);
  EXPECT_EQ(loaded.doc.meta.instance_name, "BAD-GADGET");
  EXPECT_EQ(loaded.doc.steps.size(), run.steps);
  EXPECT_TRUE(trace::replay_recording(loaded).identical);
}

TEST(FlightRecorder, DoesNotFlushAConvergedRun) {
  const std::string path = "test_flight_recorder_noflush.recording.jsonl";
  const spp::Instance good = spp::good_gadget();
  const Model m = Model::parse("RMS");
  engine::RoundRobinScheduler sched(m, good);
  engine::RunOptions options;
  options.enforce_model = m;
  options.flight.mode = engine::FlightRecorderOptions::Mode::kFull;
  options.flight.flush_path = path;
  const engine::RunResult run = engine::run(good, sched, options);
  EXPECT_EQ(run.outcome, engine::Outcome::kConverged);
  EXPECT_TRUE(run.recording_path.empty());
  EXPECT_FALSE(std::filesystem::exists(path));
  // The in-memory recording is still there for callers that want it.
  ASSERT_TRUE(run.recording.has_value());
  EXPECT_EQ(run.recording->meta.outcome, "converged");

  options.flight.flush_always = true;
  engine::RoundRobinScheduler sched2(m, good);
  const engine::RunResult forced = engine::run(good, sched2, options);
  EXPECT_EQ(forced.recording_path, path);
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove(path);
}

TEST(FlightRecorder, CampaignStampsRecordingPathsOnNonConvergedRows) {
  const std::string dir = "test_flight_recorder_campaign";
  const spp::Instance bad = spp::bad_gadget();
  const spp::Instance good = spp::good_gadget();
  study::CampaignSpec spec;
  spec.instances = {{"BAD-GADGET", &bad}, {"GOOD-GADGET", &good}};
  spec.models = {Model::parse("R1O")};
  spec.schedulers = {study::SchedulerKind::kRoundRobin};
  spec.recording_dir = dir;
  const study::CampaignResult result = study::run_campaign(spec);

  ASSERT_EQ(result.rows.size(), 2u);
  for (const study::CampaignRow& row : result.rows) {
    if (row.outcome == engine::Outcome::kConverged) {
      EXPECT_TRUE(row.recording_path.empty());
    } else {
      ASSERT_FALSE(row.recording_path.empty());
      EXPECT_TRUE(std::filesystem::exists(row.recording_path));
      const trace::LoadedRecording loaded =
          trace::load_recording_file(row.recording_path);
      EXPECT_EQ(loaded.doc.meta.instance_name, row.instance);
    }
  }
  const std::string csv = result.to_csv();
  EXPECT_NE(csv.find("wall_ms,recording_path"), std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace commroute
