// The ObsBudget contract: kSketched keeps campaign outputs byte-
// identical across thread widths (including the campaign_sketch event),
// and holds engine observability memory under a fixed cap where kFull
// grows with instance size.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/runner.hpp"
#include "engine/scheduler.hpp"
#include "model/model.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "spp/gadgets.hpp"
#include "spp/random_gen.hpp"
#include "study/campaign.hpp"

namespace commroute {
namespace {

using model::Model;

study::CampaignSpec sketched_spec(const spp::Instance& bad,
                                  const spp::Instance& good,
                                  std::size_t threads) {
  study::CampaignSpec spec;
  spec.instances = {{"BAD-GADGET", &bad}, {"GOOD", &good}};
  spec.models = Model::all();
  spec.schedulers = {study::SchedulerKind::kRoundRobin,
                     study::SchedulerKind::kRandomFair};
  spec.seeds = 2;
  spec.max_steps = 400;
  spec.threads = threads;
  spec.budget = obs::ObsBudget::kSketched;
  return spec;
}

void normalize(study::CampaignResult& result) {
  for (study::CampaignRow& row : result.rows) {
    row.wall_ms = 0.0;
  }
}

TEST(ObsBudget, SketchedCampaignIsByteIdenticalAcrossThreadWidths) {
  const spp::Instance bad = spp::bad_gadget();
  const spp::Instance good = spp::good_gadget();

  std::string reference_csv;
  std::string reference_json;
  std::string reference_sketch;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    obs::MemorySink sink;
    study::CampaignSpec spec = sketched_spec(bad, good, threads);
    spec.obs.sink = &sink;
    study::CampaignResult result = study::run_campaign(spec);
    normalize(result);

    // The driver appends exactly one campaign_sketch event after the
    // campaign_summary, computed from rows in enumeration order — its
    // bytes must not depend on the thread count.
    ASSERT_GE(sink.lines().size(), 2u);
    const std::string& sketch_line = sink.lines().back();
    const auto sketch = obs::json_parse(sketch_line);
    ASSERT_TRUE(sketch.has_value());
    EXPECT_EQ(sketch->find("type")->as_string(), "campaign_sketch");
    EXPECT_NE(sketch->find("steps_hist"), nullptr);
    EXPECT_NE(sketch->find("messages_hist"), nullptr);
    EXPECT_NE(sketch->find("instance_steps_topk"), nullptr);

    if (threads == 1) {
      reference_csv = result.to_csv();
      reference_json = result.to_json();
      reference_sketch = sketch_line;
      continue;
    }
    EXPECT_EQ(result.to_csv(), reference_csv) << threads << " threads";
    EXPECT_EQ(result.to_json(), reference_json) << threads << " threads";
    EXPECT_EQ(sketch_line, reference_sketch) << threads << " threads";
  }
}

TEST(ObsBudget, SketchedRowsKeepCsvColumnsUnchanged) {
  const spp::Instance bad = spp::bad_gadget();
  const spp::Instance good = spp::good_gadget();

  study::CampaignSpec full = sketched_spec(bad, good, 1);
  full.budget = obs::ObsBudget::kFull;
  study::CampaignResult full_result = study::run_campaign(full);
  study::CampaignResult sketched_result =
      study::run_campaign(sketched_spec(bad, good, 1));
  normalize(full_result);
  normalize(sketched_result);
  // The budget knob trades forensics for memory; row-level results
  // (outcomes, steps, messages) are not allowed to move.
  EXPECT_EQ(full_result.to_csv(), sketched_result.to_csv());
}

TEST(ObsBudget, SketchedEngineHoldsObsMemoryUnderAFixedCap) {
  // 10k-node instance: under kFull the exact observability structures
  // (per-node activation counts, the trace) grow with the instance;
  // under kSketched the accounted bytes stay below a fixed cap.
  constexpr std::size_t kNodes = 10000;
  constexpr std::uint64_t kSketchCap = 16 * 1024;
  Rng rng(7);
  const spp::Instance inst = spp::random_tree(rng, kNodes);
  const Model model = Model::parse("UMS");

  // The per-step trace and the cycle table are both O(nodes) per step —
  // they would dominate runtime/memory at this scale in either mode, so
  // the comparison isolates the per-node observability structures.
  obs::TrackedBytes full_bytes;
  engine::RoundRobinScheduler full_sched(model, inst);
  engine::RunOptions full_options;
  full_options.max_steps = 50000;
  full_options.record_trace = false;
  full_options.detect_cycles = false;
  full_options.obs_memory = &full_bytes;
  const engine::RunResult full =
      engine::run(inst, full_sched, full_options);

  obs::TrackedBytes sketched_bytes;
  engine::RoundRobinScheduler sketched_sched(model, inst);
  engine::RunOptions sketched_options;
  sketched_options.max_steps = 50000;
  sketched_options.record_trace = false;
  sketched_options.detect_cycles = false;
  sketched_options.budget = obs::ObsBudget::kSketched;
  sketched_options.obs_memory = &sketched_bytes;
  const engine::RunResult sketched =
      engine::run(inst, sketched_sched, sketched_options);

  EXPECT_EQ(full.outcome, sketched.outcome);
  EXPECT_EQ(full.steps, sketched.steps);

  // Full mode pays at least the node_activations vector — linear in the
  // instance — while the sketched run stays under the fixed cap.
  EXPECT_GE(full_bytes.peak(), kNodes * sizeof(std::uint64_t));
  EXPECT_EQ(full_bytes.peak(), full.obs_bytes);
  EXPECT_LT(sketched_bytes.peak(), kSketchCap);
  EXPECT_EQ(sketched_bytes.peak(), sketched.obs_bytes);
  EXPECT_LT(sketched.obs_bytes * 10, full.obs_bytes);

  // The exact structures are swapped for sketches, not silently kept.
  EXPECT_EQ(full.node_activations.size(), kNodes);
  EXPECT_TRUE(sketched.node_activations.empty());
  EXPECT_TRUE(sketched.trace.empty());
  EXPECT_GT(sketched.activation_topk.total_weight(), 0u);
}

TEST(ObsBudget, SketchedEngineEventCarriesTheSketches) {
  const spp::Instance bad = spp::bad_gadget();
  obs::MemorySink sink;
  obs::Registry registry;
  engine::RoundRobinScheduler sched(Model::parse("UMS"), bad);
  engine::RunOptions options;
  options.max_steps = 200;
  options.budget = obs::ObsBudget::kSketched;
  options.obs.metrics = &registry;
  options.obs.sink = &sink;
  engine::run(bad, sched, options);

  bool saw_engine_run = false;
  for (const std::string& line : sink.lines()) {
    const auto event = obs::json_parse(line);
    ASSERT_TRUE(event.has_value());
    if (event->find("type")->as_string() != "engine_run") {
      continue;
    }
    saw_engine_run = true;
    EXPECT_EQ(event->find("obs_budget")->as_string(), "sketched");
    ASSERT_NE(event->find("flap_topk"), nullptr);
    ASSERT_NE(event->find("activation_topk"), nullptr);
    EXPECT_GT(event->find("activation_topk")->find("total")->as_number(),
              0.0);
  }
  EXPECT_TRUE(saw_engine_run);
}

}  // namespace
}  // namespace commroute
