// The checker matrix driver: instances x models verdict sweeps with
// deterministic CSV export, byte-identical at any thread width.
#include <gtest/gtest.h>

#include "spp/gadgets.hpp"
#include "study/checker_campaign.hpp"
#include "support/error.hpp"

namespace commroute::study {
namespace {

TEST(CheckerMatrix, SweepsAllModelsAndCountsVerdicts) {
  const spp::Instance dis = spp::disagree();
  CheckerMatrixSpec spec;
  spec.instances = {{"disagree", &dis}};
  spec.explore.max_channel_length = 3;
  const CheckerMatrixResult result = run_checker_matrix(spec);
  ASSERT_EQ(result.cells.size(), 24u);  // empty models = all 24
  // Ex. A.1: DISAGREE oscillates in the weak models, provably not in
  // the strong ones — both classes must be represented.
  EXPECT_GT(result.oscillating(), 0u);
  EXPECT_GT(result.proven_safe(), 0u);
  EXPECT_LT(result.oscillating() + result.proven_safe(),
            result.cells.size() + 1);
}

TEST(CheckerMatrix, CsvIsByteIdenticalAcrossThreadWidths) {
  const spp::Instance dis = spp::disagree();
  const spp::Instance good = spp::good_gadget();
  std::string serial_csv;
  for (const std::size_t threads : {1u, 8u}) {
    CheckerMatrixSpec spec;
    spec.instances = {{"disagree", &dis}, {"good", &good}};
    spec.models = {model::Model::parse("R1O"), model::Model::parse("REA"),
                   model::Model::parse("RMS")};
    spec.explore.max_channel_length = 2;
    spec.explore.max_states = 2000;
    spec.explore.threads = threads;
    const std::string csv = run_checker_matrix(spec).to_csv();
    EXPECT_NE(csv.find("disagree,R1O,"), std::string::npos);
    if (threads == 1) {
      serial_csv = csv;
    } else {
      EXPECT_EQ(serial_csv, csv);
    }
  }
}

TEST(CheckerMatrix, RowsLandInSpecOrder) {
  const spp::Instance dis = spp::disagree();
  CheckerMatrixSpec spec;
  spec.instances = {{"a", &dis}, {"b", &dis}};
  spec.models = {model::Model::parse("REA"), model::Model::parse("REO")};
  const CheckerMatrixResult result = run_checker_matrix(spec);
  ASSERT_EQ(result.cells.size(), 4u);
  EXPECT_EQ(result.cells[0].instance, "a");
  EXPECT_EQ(result.cells[0].model.name(), "REA");
  EXPECT_EQ(result.cells[1].model.name(), "REO");
  EXPECT_EQ(result.cells[2].instance, "b");
}

TEST(CheckerMatrix, RejectsEmptyAndNullSpecs) {
  EXPECT_THROW(run_checker_matrix({}), PreconditionError);
  CheckerMatrixSpec spec;
  spec.instances = {{"null", nullptr}};
  EXPECT_THROW(run_checker_matrix(spec), PreconditionError);
}

}  // namespace
}  // namespace commroute::study
