#include <gtest/gtest.h>

#include <iterator>
#include <set>

#include "engine/runner.hpp"
#include "obs/obs.hpp"
#include "spp/gadgets.hpp"
#include "spp/solver.hpp"
#include "test_util.hpp"

namespace commroute::engine {
namespace {

using model::Model;

TEST(Runner, GoodGadgetConvergesUnderRoundRobin) {
  const spp::Instance inst = spp::good_gadget();
  for (const Model& m : Model::all()) {
    RoundRobinScheduler sched(m, inst);
    const RunResult result = run(inst, sched, {.enforce_model = m});
    EXPECT_EQ(result.outcome, Outcome::kConverged) << m.name();
    EXPECT_TRUE(spp::is_solution(inst, result.final_assignment))
        << m.name();
  }
}

TEST(Runner, ConvergedResultIsTheUniqueSolution) {
  const spp::Instance inst = spp::good_gadget();
  const auto sols = spp::stable_assignments(inst);
  ASSERT_EQ(sols.size(), 1u);
  RoundRobinScheduler sched(Model::parse("RMS"), inst);
  const RunResult result = run(inst, sched);
  EXPECT_EQ(result.final_assignment, sols[0]);
}

TEST(Runner, DisagreeOscillatesUnderTheA1Script) {
  const spp::Instance inst = spp::disagree();
  const auto [script, loop_from] =
      testutil::disagree_r1o_oscillation(inst);
  ScriptedScheduler sched(script, loop_from);
  const RunResult result =
      run(inst, sched, {.enforce_model = Model::parse("R1O")});
  EXPECT_EQ(result.outcome, Outcome::kOscillating);
  EXPECT_GT(result.cycle_length, 0u);
  // The oscillation changes x's and y's assignments within the cycle.
  EXPECT_GT(result.trace.change_count(), 4u);
}

TEST(Runner, BadGadgetNeverConverges) {
  const spp::Instance inst = spp::bad_gadget();
  for (const char* name : {"R1O", "RMS", "REA", "UMS"}) {
    RoundRobinScheduler sched(Model::parse(name), inst);
    const RunResult result = run(inst, sched, {.max_steps = 3000});
    EXPECT_NE(result.outcome, Outcome::kConverged) << name;
  }
}

TEST(Runner, ScriptExhaustionStopsTheRun) {
  const spp::Instance inst = spp::disagree();
  model::ActivationScript script{model::read_one_step(
      inst, inst.graph().node("d"), inst.graph().node("x"))};
  ScriptedScheduler sched(script);
  const RunResult result = run(inst, sched);
  EXPECT_EQ(result.outcome, Outcome::kExhausted);
  EXPECT_EQ(result.steps, 1u);
}

TEST(Runner, TraceRecordsInitialAndEveryStep) {
  const spp::Instance inst = spp::good_gadget();
  RoundRobinScheduler sched(Model::parse("REA"), inst);
  const RunResult result = run(inst, sched);
  EXPECT_EQ(result.trace.size(), result.steps + 1);
  EXPECT_EQ(result.trace.back(), result.final_assignment);
}

TEST(Runner, TraceRecordingCanBeDisabled) {
  const spp::Instance inst = spp::good_gadget();
  RoundRobinScheduler sched(Model::parse("REA"), inst);
  const RunResult result = run(inst, sched, {.record_trace = false});
  EXPECT_TRUE(result.trace.empty());
}

TEST(Runner, StronglyQuiescentRequiresPendingAnnouncements) {
  const spp::Instance inst = spp::disagree();
  const NetworkState initial(inst);
  // Channels are empty initially, but d's first announcement is pending.
  EXPECT_TRUE(initial.quiescent());
  EXPECT_FALSE(strongly_quiescent(initial));
}

TEST(Runner, CountsMessages) {
  const spp::Instance inst = spp::good_gadget();
  RoundRobinScheduler sched(Model::parse("RMS"), inst);
  const RunResult result = run(inst, sched);
  EXPECT_GT(result.messages_sent, 0u);
  EXPECT_EQ(result.messages_dropped, 0u);
  // Messages flowed, so the in-flight byte peak is nonzero and at
  // least one Message struct per message at peak occupancy.
  EXPECT_GT(result.max_channel_occupancy, 0u);
  EXPECT_GE(result.peak_channel_bytes,
            result.max_channel_occupancy * sizeof(engine::Message));

  // Byte estimates derive from element counts: a rerun is identical.
  RoundRobinScheduler again_sched(Model::parse("RMS"), inst);
  const RunResult again = run(inst, again_sched);
  EXPECT_EQ(again.peak_channel_bytes, result.peak_channel_bytes);
}

TEST(Runner, RandomFairConvergesOnSafeInstanceAllModels) {
  const spp::Instance inst = spp::good_gadget();
  for (const Model& m : Model::all()) {
    RandomFairScheduler sched(m, inst, Rng(m.index()),
                              {.drop_prob = 0.2, .sweep_period = 8});
    const RunResult result =
        run(inst, sched, {.max_steps = 5000, .enforce_model = m});
    EXPECT_EQ(result.outcome, Outcome::kConverged) << m.name();
    EXPECT_TRUE(spp::is_solution(inst, result.final_assignment))
        << m.name();
    EXPECT_EQ(result.outstanding_drops, 0u) << m.name();
  }
}

TEST(Runner, ModelEnforcementRejectsIllegalScript) {
  const spp::Instance inst = spp::disagree();
  model::ActivationScript script{model::read_every_one_step(
      inst, inst.graph().node("x"))};
  ScriptedScheduler sched(script);
  EXPECT_THROW(run(inst, sched, {.enforce_model = Model::parse("R1O")}),
               PreconditionError);
}

TEST(Runner, OutcomeToString) {
  EXPECT_EQ(to_string(Outcome::kConverged), "converged");
  EXPECT_EQ(to_string(Outcome::kOscillating), "oscillating");
  EXPECT_EQ(to_string(Outcome::kExhausted), "exhausted");
}

TEST(Runner, OutcomeNamesRoundTrip) {
  for (const Outcome o : {Outcome::kConverged, Outcome::kOscillating,
                          Outcome::kExhausted}) {
    const auto parsed = outcome_from_string(to_string(o));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, o);
  }
  EXPECT_FALSE(outcome_from_string("diverged").has_value());
  EXPECT_FALSE(outcome_from_string("").has_value());
}

TEST(Runner, CycleDetectionFlagTracksSchedulerSignature) {
  const spp::Instance inst = spp::good_gadget();
  const Model m = Model::parse("RMS");

  RoundRobinScheduler rr(m, inst);
  const RunResult with_signature = run(inst, rr, {.enforce_model = m});
  EXPECT_TRUE(with_signature.cycle_detection);

  RandomFairScheduler random(m, inst, Rng(1), {.sweep_period = 8});
  const RunResult without = run(inst, random, {.enforce_model = m});
  EXPECT_FALSE(without.cycle_detection);

  RoundRobinScheduler rr2(m, inst);
  const RunResult disabled =
      run(inst, rr2, {.detect_cycles = false, .enforce_model = m});
  EXPECT_FALSE(disabled.cycle_detection);
}

TEST(Runner, SignaturelessSchedulerPublishesDisabledGaugeAndEvent) {
  const spp::Instance inst = spp::good_gadget();
  const Model m = Model::parse("RMS");
  obs::Registry metrics;
  obs::MemorySink sink;
  RunOptions options;
  options.enforce_model = m;
  options.obs.metrics = &metrics;
  options.obs.sink = &sink;

  RandomFairScheduler random(m, inst, Rng(2), {.sweep_period = 8});
  run(inst, random, options);
  EXPECT_EQ(metrics.gauge("engine.cycle_detection_disabled").value(), 1u);
  bool saw_event = false;
  for (const std::string& line : sink.lines()) {
    if (line.find("\"type\":\"cycle_detection_disabled\"") !=
        std::string::npos) {
      saw_event = true;
      EXPECT_NE(line.find("scheduler has no signature"),
                std::string::npos);
    }
  }
  EXPECT_TRUE(saw_event);

  // A scheduler with a signature publishes neither.
  obs::Registry clean_metrics;
  obs::MemorySink clean_sink;
  options.obs.metrics = &clean_metrics;
  options.obs.sink = &clean_sink;
  RoundRobinScheduler rr(m, inst);
  const RunResult detected = run(inst, rr, options);
  EXPECT_TRUE(detected.cycle_detection);
  for (const std::string& line : clean_sink.lines()) {
    EXPECT_EQ(line.find("cycle_detection_disabled"), std::string::npos);
  }
}

TEST(Runner, OutcomeStringsRoundTripExhaustively) {
  // Every enumerator survives to_string -> outcome_from_string, and the
  // names stay distinct (recordings and campaign CSVs store them).
  const Outcome all[] = {Outcome::kConverged, Outcome::kOscillating,
                         Outcome::kExhausted};
  std::set<std::string> names;
  for (const Outcome outcome : all) {
    const std::string name = to_string(outcome);
    names.insert(name);
    const std::optional<Outcome> back = outcome_from_string(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, outcome) << name;
  }
  EXPECT_EQ(names.size(), std::size(all));
  EXPECT_FALSE(outcome_from_string("").has_value());
  EXPECT_FALSE(outcome_from_string("Converged").has_value());
  EXPECT_FALSE(outcome_from_string("diverged").has_value());
}

}  // namespace
}  // namespace commroute::engine
