#include <gtest/gtest.h>

#include <set>

#include "model/model.hpp"
#include "support/error.hpp"

namespace commroute::model {
namespace {

TEST(Model, ThereAreExactly24) {
  EXPECT_EQ(Model::kCount, 24);
  EXPECT_EQ(Model::all().size(), 24u);
  std::set<std::string> names;
  for (const Model& m : Model::all()) {
    names.insert(m.name());
  }
  EXPECT_EQ(names.size(), 24u);
}

TEST(Model, NameParseRoundTrip) {
  for (const Model& m : Model::all()) {
    EXPECT_EQ(Model::parse(m.name()), m);
  }
}

TEST(Model, IndexRoundTrip) {
  for (int i = 0; i < Model::kCount; ++i) {
    EXPECT_EQ(Model::from_index(i).index(), i);
  }
  EXPECT_THROW(Model::from_index(-1), PreconditionError);
  EXPECT_THROW(Model::from_index(24), PreconditionError);
}

TEST(Model, IndexOrderMatchesPaperRows) {
  // Paper row order: R1O RMO REO R1S RMS RES R1F RMF REF R1A RMA REA,
  // then the U block.
  const std::vector<std::string> expected{
      "R1O", "RMO", "REO", "R1S", "RMS", "RES", "R1F", "RMF",
      "REF", "R1A", "RMA", "REA", "U1O", "UMO", "UEO", "U1S",
      "UMS", "UES", "U1F", "UMF", "UEF", "U1A", "UMA", "UEA"};
  for (int i = 0; i < Model::kCount; ++i) {
    EXPECT_EQ(Model::from_index(i).name(), expected[i]) << i;
  }
}

TEST(Model, ParseRejectsGarbage) {
  EXPECT_THROW(Model::parse(""), ParseError);
  EXPECT_THROW(Model::parse("R1"), ParseError);
  EXPECT_THROW(Model::parse("X1O"), ParseError);
  EXPECT_THROW(Model::parse("RZO"), ParseError);
  EXPECT_THROW(Model::parse("R1X"), ParseError);
  EXPECT_THROW(Model::parse("R1OO"), ParseError);
}

TEST(Model, SpecificModelPredicates) {
  EXPECT_TRUE(Model::parse("REA").is_polling());
  EXPECT_TRUE(Model::parse("U1A").is_polling());
  EXPECT_FALSE(Model::parse("RES").is_polling());

  EXPECT_TRUE(Model::parse("R1O").is_message_passing());
  EXPECT_TRUE(Model::parse("UEO").is_message_passing());
  EXPECT_FALSE(Model::parse("R1S").is_message_passing());

  EXPECT_TRUE(Model::parse("RMS").is_queueing());
  EXPECT_TRUE(Model::parse("UMS").is_queueing());
  EXPECT_FALSE(Model::parse("RES").is_queueing());
  EXPECT_FALSE(Model::parse("RMF").is_queueing());
}

TEST(Model, ReliabilityPredicate) {
  EXPECT_TRUE(Model::parse("R1O").reliable());
  EXPECT_FALSE(Model::parse("U1O").reliable());
}

TEST(Model, DimensionSymbols) {
  EXPECT_EQ(symbol(Reliability::kReliable), 'R');
  EXPECT_EQ(symbol(Reliability::kUnreliable), 'U');
  EXPECT_EQ(symbol(NeighborMode::kOne), '1');
  EXPECT_EQ(symbol(NeighborMode::kMultiple), 'M');
  EXPECT_EQ(symbol(NeighborMode::kEvery), 'E');
  EXPECT_EQ(symbol(MessageMode::kOne), 'O');
  EXPECT_EQ(symbol(MessageMode::kSome), 'S');
  EXPECT_EQ(symbol(MessageMode::kForced), 'F');
  EXPECT_EQ(symbol(MessageMode::kAll), 'A');
}

TEST(Model, EqualityComparesAllDimensions) {
  EXPECT_EQ(Model::parse("RMS"), Model::parse("RMS"));
  EXPECT_NE(Model::parse("RMS"), Model::parse("UMS"));
  EXPECT_NE(Model::parse("RMS"), Model::parse("R1S"));
  EXPECT_NE(Model::parse("RMS"), Model::parse("RMF"));
}

}  // namespace
}  // namespace commroute::model
