#include <gtest/gtest.h>

#include "engine/channel.hpp"
#include "support/error.hpp"

namespace commroute::engine {
namespace {

TEST(Channel, FifoOrder) {
  Channel c;
  c.push(Message{Path{1, 0}, 0});
  c.push(Message{Path{2, 0}, 0});
  c.push(Message{Path::epsilon(), 0});
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.at(0).path, (Path{1, 0}));
  EXPECT_EQ(c.at(2).path, Path::epsilon());
  c.pop_front();
  EXPECT_EQ(c.at(0).path, (Path{2, 0}));
}

TEST(Channel, PopFrontN) {
  Channel c;
  for (NodeId i = 0; i < 5; ++i) {
    c.push(Message{Path{i}, 0});
  }
  c.pop_front_n(3);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.at(0).path, Path{3});
  c.pop_front_n(0);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_THROW(c.pop_front_n(3), PreconditionError);
}

TEST(Channel, PopEmptyThrows) {
  Channel c;
  EXPECT_THROW(c.pop_front(), PreconditionError);
}

TEST(Channel, EqualityIncludesTags) {
  Channel a, b;
  a.push(Message{Path{1, 0}, 0});
  b.push(Message{Path{1, 0}, 1});
  EXPECT_FALSE(a == b);
  b.at_mutable(0).tag = 0;
  EXPECT_TRUE(a == b);
}

TEST(Channel, HashTracksContents) {
  Channel a, b;
  EXPECT_EQ(a.hash(), b.hash());
  a.push(Message{Path{1, 0}, 0});
  EXPECT_NE(a.hash(), b.hash());
  b.push(Message{Path{1, 0}, 0});
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(Channel, MessageEqualityAndHash) {
  const Message m1{Path{1, 0}, 0};
  const Message m2{Path{1, 0}, 0};
  const Message m3{Path{1, 0}, 9};
  EXPECT_EQ(m1, m2);
  EXPECT_FALSE(m1 == m3);
  EXPECT_EQ(std::hash<Message>{}(m1), std::hash<Message>{}(m2));
  EXPECT_NE(std::hash<Message>{}(m1), std::hash<Message>{}(m3));
}

TEST(Channel, WithdrawalIsEmptyPath) {
  Channel c;
  c.push(Message{Path::epsilon(), 0});
  EXPECT_TRUE(c.at(0).path.empty());
}

TEST(Channel, AtOutOfRangeThrowsWithDiagnostic) {
  Channel c;
  c.push(Message{Path{1, 0}, 0});
  EXPECT_NO_THROW(c.at(0));
  try {
    c.at(1);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    // The diagnostic names the index and the size.
    EXPECT_NE(std::string(e.what()).find("1"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("size"), std::string::npos);
  }
  EXPECT_THROW(c.at_mutable(1), PreconditionError);
  EXPECT_THROW(Channel{}.at(0), PreconditionError);
}

TEST(Channel, PopFrontNBeyondSizeThrowsWithDiagnostic) {
  Channel c;
  c.push(Message{Path{1, 0}, 0});
  c.push(Message{Path{2, 0}, 0});
  try {
    c.pop_front_n(3);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("2"), std::string::npos);
  }
  EXPECT_EQ(c.size(), 2u);  // failed pop left the channel intact
}

}  // namespace
}  // namespace commroute::engine
