#include <gtest/gtest.h>

#include "spp/builder.hpp"
#include "spp/gadgets.hpp"
#include "spp/instance.hpp"
#include "support/error.hpp"

namespace commroute::spp {
namespace {

TEST(InstanceBuilder, BuildsDisagreeShape) {
  const Instance inst = disagree();
  EXPECT_EQ(inst.node_count(), 3u);
  EXPECT_EQ(inst.graph().edge_count(), 3u);
  EXPECT_EQ(inst.destination(), inst.graph().node("d"));
  EXPECT_EQ(inst.permitted_path_count(), 4u);
}

TEST(InstanceBuilder, DestinationGetsTrivialPath) {
  const Instance inst = disagree();
  const auto& pd = inst.permitted(inst.destination());
  ASSERT_EQ(pd.size(), 1u);
  EXPECT_EQ(pd[0], Path{inst.destination()});
}

TEST(InstanceBuilder, PreferenceOrderBecomesRank) {
  const Instance inst = disagree();
  const NodeId x = inst.graph().node("x");
  EXPECT_EQ(*inst.rank(x, inst.parse_path("xyd")), 0u);
  EXPECT_EQ(*inst.rank(x, inst.parse_path("xd")), 1u);
  EXPECT_FALSE(inst.rank(x, inst.parse_path("yd")).has_value());
}

TEST(InstanceBuilder, RejectsDuplicatePreferenceList) {
  InstanceBuilder b("d");
  b.edge("x", "d");
  b.prefer("x", {"xd"});
  b.prefer("x", {"xd"});
  EXPECT_THROW(b.build(), PreconditionError);
}

TEST(InstanceBuilder, RejectsUnknownNodesInPrefer) {
  InstanceBuilder b("d");
  b.edge("x", "d");
  EXPECT_THROW(b.prefer("z", {"zd"}), PreconditionError);
}

TEST(InstanceValidation, RejectsPathNotStartingAtNode) {
  InstanceBuilder b("d");
  b.edge("x", "d").edge("y", "d");
  b.prefer("x", {"yd"});
  EXPECT_THROW(b.build(), PreconditionError);
}

TEST(InstanceValidation, RejectsPathNotEndingAtDestination) {
  InstanceBuilder b("d");
  b.edge("x", "d").edge("x", "y");
  b.prefer("x", {"xy"});
  EXPECT_THROW(b.build(), PreconditionError);
}

TEST(InstanceValidation, RejectsMissingEdge) {
  InstanceBuilder b("d");
  b.edge("x", "d");
  b.node("y");
  b.edge("y", "d");
  b.prefer("x", {"xyd"});  // edge x-y does not exist
  EXPECT_THROW(b.build(), PreconditionError);
}

TEST(InstanceValidation, RejectsDuplicatePermittedPath) {
  InstanceBuilder b("d");
  b.edge("x", "d");
  b.prefer("x", {"xd", "xd"});
  EXPECT_THROW(b.build(), PreconditionError);
}

TEST(Instance, PrefersIsStrict) {
  const Instance inst = disagree();
  const NodeId x = inst.graph().node("x");
  const Path xyd = inst.parse_path("xyd");
  const Path xd = inst.parse_path("xd");
  EXPECT_TRUE(inst.prefers(x, xyd, xd));
  EXPECT_FALSE(inst.prefers(x, xd, xyd));
  EXPECT_FALSE(inst.prefers(x, xyd, xyd));
  EXPECT_TRUE(inst.prefers(x, xd, Path::epsilon()));
  EXPECT_FALSE(inst.prefers(x, Path::epsilon(), xd));
}

TEST(Instance, BestSelectsLowestRankIgnoringForbidden) {
  const Instance inst = disagree();
  const NodeId x = inst.graph().node("x");
  const Path xyd = inst.parse_path("xyd");
  const Path xd = inst.parse_path("xd");
  EXPECT_EQ(inst.best(x, {xd, xyd}), xyd);
  EXPECT_EQ(inst.best(x, {xd}), xd);
  EXPECT_EQ(inst.best(x, {inst.parse_path("yd")}), Path::epsilon());
  EXPECT_EQ(inst.best(x, {}), Path::epsilon());
}

TEST(Instance, PathNamesCompactForSingleCharNodes) {
  const Instance inst = disagree();
  EXPECT_EQ(inst.path_name(inst.parse_path("xyd")), "xyd");
  EXPECT_EQ(inst.path_name(Path::epsilon()), "(eps)");
}

TEST(Instance, ParsePathSpacedSyntax) {
  const Instance inst = disagree();
  EXPECT_EQ(inst.parse_path("x y d"), inst.parse_path("xyd"));
  EXPECT_EQ(inst.parse_path(""), Path::epsilon());
  EXPECT_EQ(inst.parse_path("(eps)"), Path::epsilon());
  EXPECT_THROW(inst.parse_path("xzd"), ParseError);
}

TEST(Instance, MultiCharNamesUseSeparators) {
  InstanceBuilder b("dst");
  b.edge("n1", "dst");
  b.prefer("n1", {"n1 dst"});
  const Instance inst = b.build();
  EXPECT_EQ(inst.path_name(inst.parse_path("n1 dst")), "n1>dst");
  EXPECT_THROW(inst.parse_path("n1dst"), PreconditionError);
}

TEST(Instance, DefaultExportAllowsEverything) {
  const Instance inst = disagree();
  const NodeId x = inst.graph().node("x");
  const NodeId y = inst.graph().node("y");
  EXPECT_TRUE(inst.export_allows(x, y, inst.parse_path("xd")));
}

TEST(Instance, ToStringMentionsEveryNode) {
  const Instance inst = disagree();
  const std::string s = inst.to_string();
  EXPECT_NE(s.find("x:"), std::string::npos);
  EXPECT_NE(s.find("y:"), std::string::npos);
  EXPECT_NE(s.find("xyd"), std::string::npos);
}

}  // namespace
}  // namespace commroute::spp
