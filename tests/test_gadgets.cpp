#include <gtest/gtest.h>

#include "spp/dispute_wheel.hpp"
#include "spp/gadgets.hpp"
#include "spp/solver.hpp"

namespace commroute::spp {
namespace {

TEST(Gadgets, DisagreeHasExactlyTwoSolutions) {
  const Instance inst = disagree();
  const auto sols = stable_assignments(inst);
  ASSERT_EQ(sols.size(), 2u);
  // The two solutions of Ex. A.1: (d, xyd, yd) and (d, xd, yxd).
  std::vector<std::string> names;
  for (const auto& s : sols) {
    names.push_back(assignment_name(inst, s));
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names[0], "(d, xd, yxd)");
  EXPECT_EQ(names[1], "(d, xyd, yd)");
}

TEST(Gadgets, DisagreeHasDisputeWheel) {
  EXPECT_FALSE(is_dispute_wheel_free(disagree()));
}

TEST(Gadgets, BadGadgetHasNoSolution) {
  EXPECT_TRUE(stable_assignments(bad_gadget()).empty());
  EXPECT_FALSE(is_dispute_wheel_free(bad_gadget()));
}

TEST(Gadgets, GoodGadgetHasUniqueSolutionAndNoWheel) {
  const Instance inst = good_gadget();
  const auto sols = stable_assignments(inst);
  ASSERT_EQ(sols.size(), 1u);
  EXPECT_TRUE(is_dispute_wheel_free(inst));
  // All-direct assignment.
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    if (v == inst.destination()) {
      continue;
    }
    EXPECT_EQ(sols[0][v].size(), 2u) << inst.graph().name(v);
  }
}

TEST(Gadgets, ExampleA2Structure) {
  const Instance inst = example_a2();
  EXPECT_EQ(inst.node_count(), 7u);
  const NodeId u = inst.graph().node("u");
  const NodeId v = inst.graph().node("v");
  // u refuses paths through y: no permitted path of u contains y.
  const NodeId y = inst.graph().node("y");
  for (const Path& p : inst.permitted(u)) {
    EXPECT_FALSE(p.contains(y)) << inst.path_name(p);
  }
  // Preference shapes from Fig. 6.
  EXPECT_EQ(*inst.rank(u, inst.parse_path("uvazd")), 0u);
  EXPECT_EQ(*inst.rank(u, inst.parse_path("uazd")), 1u);
  EXPECT_EQ(*inst.rank(v, inst.parse_path("vuazd")), 0u);
  EXPECT_EQ(*inst.rank(v, inst.parse_path("vazd")), 1u);
  EXPECT_EQ(*inst.rank(v, inst.parse_path("vayd")), 2u);
}

TEST(Gadgets, ExampleA2HasTwoSolutions) {
  // The u/v pair forms a DISAGREE on top of the stable substrate.
  const auto sols = stable_assignments(example_a2());
  EXPECT_EQ(sols.size(), 2u);
}

TEST(Gadgets, ExampleA3PreferencesMatchFig7) {
  const Instance inst = example_a3();
  const NodeId s = inst.graph().node("s");
  EXPECT_EQ(*inst.rank(s, inst.parse_path("subd")), 0u);
  EXPECT_EQ(*inst.rank(s, inst.parse_path("svbd")), 1u);
  EXPECT_EQ(*inst.rank(s, inst.parse_path("suad")), 2u);
  EXPECT_FALSE(inst.is_permitted(s, inst.parse_path("svad")));
  const NodeId u = inst.graph().node("u");
  EXPECT_TRUE(inst.prefers(u, inst.parse_path("uad"),
                           inst.parse_path("ubd")));
}

TEST(Gadgets, ExampleA4PreferencesMatchFig8) {
  const Instance inst = example_a4();
  const NodeId u = inst.graph().node("u");
  const NodeId s = inst.graph().node("s");
  EXPECT_TRUE(inst.prefers(u, inst.parse_path("ubd"),
                           inst.parse_path("uad")));
  EXPECT_TRUE(inst.prefers(s, inst.parse_path("suad"),
                           inst.parse_path("subd")));
  EXPECT_EQ(inst.permitted_path_count(), 6u);
}

TEST(Gadgets, ExampleA5PreferencesMatchFig9) {
  const Instance inst = example_a5();
  const NodeId s = inst.graph().node("s");
  const NodeId c = inst.graph().node("c");
  EXPECT_EQ(*inst.rank(s, inst.parse_path("scbd")), 0u);
  EXPECT_EQ(*inst.rank(s, inst.parse_path("sxd")), 1u);
  EXPECT_EQ(*inst.rank(s, inst.parse_path("scad")), 2u);
  EXPECT_TRUE(inst.prefers(c, inst.parse_path("cad"),
                           inst.parse_path("cbd")));
  EXPECT_EQ(inst.permitted_path_count(), 8u);
}

TEST(Gadgets, ShortestRingIsWheelFreeAndSolvable) {
  for (const std::size_t k : {3u, 5u, 8u}) {
    const Instance inst = shortest_ring(k);
    EXPECT_EQ(inst.node_count(), k + 1);
    EXPECT_TRUE(is_dispute_wheel_free(inst)) << k;
    EXPECT_EQ(stable_assignments(inst, 2).size(), 1u) << k;
  }
}

TEST(Gadgets, RegistryCoversAll) {
  const auto all = all_gadgets();
  EXPECT_EQ(all.size(), 10u);
  for (const auto& [name, inst] : all) {
    EXPECT_FALSE(name.empty());
    EXPECT_GE(inst.node_count(), 3u) << name;
  }
}

}  // namespace
}  // namespace commroute::spp
