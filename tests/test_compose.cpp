#include <gtest/gtest.h>

#include "engine/executor.hpp"
#include "engine/scheduler.hpp"
#include "realization/closure.hpp"
#include "realization/compose.hpp"
#include "spp/gadgets.hpp"
#include "trace/seq_match.hpp"

namespace commroute::realization {
namespace {

using model::Model;

TEST(Compose, IdentityChainForSamePair) {
  const auto chain = find_transform_chain(Model::parse("RMS"),
                                          Model::parse("RMS"));
  ASSERT_TRUE(chain.has_value());
  EXPECT_TRUE(chain->links.empty());
  EXPECT_EQ(chain->claimed(), Strength::kExact);
}

TEST(Compose, ExactChainFromREOToUMS) {
  // REO -> RMO -> RMF -> RMS -> UMS, every hop exact.
  const auto chain = find_transform_chain(Model::parse("REO"),
                                          Model::parse("UMS"));
  ASSERT_TRUE(chain.has_value());
  EXPECT_EQ(chain->claimed(), Strength::kExact);
  EXPECT_GE(chain->links.size(), 3u);
}

TEST(Compose, NoChainIntoStrictlyWeakerModels) {
  // Realizing R1O in REA is impossible (Thm. 3.8): no positive-theorem
  // path can exist.
  EXPECT_FALSE(find_transform_chain(Model::parse("R1O"),
                                    Model::parse("REA"))
                   .has_value());
  EXPECT_FALSE(find_transform_chain(Model::parse("RMS"),
                                    Model::parse("REO"))
                   .has_value());
}

// The constructive layer and the algebraic layer agree: the best chain's
// bottleneck equals the closure's lower bound for every ordered pair.
// (Both are max-min computations over the same positive facts; this test
// pins the two independent implementations to each other.)
TEST(Compose, ChainBottleneckMatchesClosureLowerBound) {
  const RealizationTable table = RealizationTable::closure();
  for (const Model& a : Model::all()) {
    for (const Model& b : Model::all()) {
      const auto chain = find_transform_chain(a, b);
      const Strength closure_lo = table.cell(a, b).lo;
      if (chain.has_value()) {
        EXPECT_EQ(level(chain->claimed()), level(closure_lo))
            << a.name() << " -> " << b.name() << ": "
            << chain->to_string();
      } else {
        EXPECT_EQ(level(closure_lo), 0)
            << a.name() << " -> " << b.name()
            << " has no chain but closure lo is " << level(closure_lo);
      }
    }
  }
}

TEST(Compose, ToStringShowsEveryHop) {
  const auto chain = find_transform_chain(Model::parse("REA"),
                                          Model::parse("R1O"));
  ASSERT_TRUE(chain.has_value());
  const std::string s = chain->to_string();
  EXPECT_NE(s.find("REA"), std::string::npos);
  EXPECT_NE(s.find("R1O"), std::string::npos);
  EXPECT_NE(s.find("overall"), std::string::npos);
}

model::ActivationScript random_script(const spp::Instance& inst,
                                      const Model& m, Rng rng, int steps) {
  engine::RandomFairScheduler sched(
      m, inst, rng,
      {.drop_prob = m.reliable() ? 0.0 : 0.3, .sweep_period = 16});
  engine::NetworkState state(inst);
  model::ActivationScript script;
  for (int i = 0; i < steps; ++i) {
    const auto step = sched.next(state);
    engine::execute_step(state, step);
    script.push_back(step);
  }
  return script;
}

trace::MatchKind required_kind(Strength s) {
  switch (s) {
    case Strength::kExact:
      return trace::MatchKind::kExact;
    case Strength::kRepetition:
      return trace::MatchKind::kRepetition;
    default:
      return trace::MatchKind::kSubsequence;
  }
}

// End-to-end: apply multi-hop chains to real executions and verify the
// composed relation empirically.
TEST(Compose, AppliedChainsRealizeTheClaimedRelation) {
  const spp::Instance inst = spp::disagree();
  const std::vector<std::pair<const char*, const char*>> pairs{
      {"REO", "UMS"},  // exact, several hops
      {"REA", "R1S"},  // repetition via Thm. 3.5
      {"RMA", "R1O"},  // subsequence via Prop. 3.6
      {"UEA", "UMS"},  // exact within the unreliable block
      {"U1O", "R1F"},  // crosses back to reliable via Thm. 3.7
  };
  for (const auto& [from_name, to_name] : pairs) {
    const Model from = Model::parse(from_name);
    const Model to = Model::parse(to_name);
    const auto chain = find_transform_chain(from, to);
    ASSERT_TRUE(chain.has_value()) << from_name << "->" << to_name;

    for (int trial = 0; trial < 4; ++trial) {
      const auto script =
          random_script(inst, from, Rng(trial * 37 + 1), 50);
      const auto rec = trace::record_script(inst, script, from);
      const auto out = apply_chain(*chain, inst, rec);
      for (const auto& step : out) {
        model::require_step_allowed(to, inst, step);
      }
      const auto replay = trace::record_script(inst, out, to);
      const auto got = trace::strongest_match(rec.trace, replay.trace);
      EXPECT_GE(static_cast<int>(got),
                static_cast<int>(required_kind(chain->claimed())))
          << chain->to_string() << " trial " << trial << ": got "
          << trace::to_string(got);
    }
  }
}

}  // namespace
}  // namespace commroute::realization
