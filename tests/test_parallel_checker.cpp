// Determinism and truncation contracts of the parallel explorer:
//
//  * threads ∈ {1, 2, 8} produce byte-identical results under the BFS
//    searcher — verdict fields, graph counts, witness scripts, and the
//    checker_summary event (minus the quarantined wall_us field) — for
//    all 24 models on BAD-GADGET and GOOD-GADGET;
//  * alternative searchers (DFS / random / priority) reach the same
//    verdict on exhaustive explorations, though they number states
//    differently;
//  * the state cap admits exactly <= N states at intern time (the
//    historical per-pop check admitted N+branching);
//  * count- and time-based heartbeat cadences are independent (the
//    historical code reset the time interval on every count beat);
//  * truncated runs land progress on done == total with a
//    "truncated:<reason>" detail label instead of freezing short.
#include <gtest/gtest.h>

#include <algorithm>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "checker/explorer.hpp"
#include "engine/runner.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "spp/gadgets.hpp"

namespace commroute::checker {
namespace {

using model::Model;

/// Everything a determinism comparison cares about, flattened to a
/// string so a mismatch prints both sides wholesale.
std::string result_fingerprint(const spp::Instance& inst,
                               const ExploreResult& r) {
  std::ostringstream os;
  os << "oscillation=" << r.oscillation_found
     << " exhaustive=" << r.exhaustive
     << " channel_bound_hit=" << r.channel_bound_hit
     << " state_cap_hit=" << r.state_cap_hit
     << " memory_limit_hit=" << r.memory_limit_hit
     << " states=" << r.states << " transitions=" << r.transitions
     << " caps=" << r.state_cap_limit << "/" << r.channel_length_limit
     << "/" << r.memory_limit
     << " bound_skipped=" << r.bound_skipped_expansions
     << " dedup=" << r.dedup_hits << " frontier_peak=" << r.frontier_peak
     << " scc_passes=" << r.scc_prune_passes
     << " tracked_peak=" << r.tracked_peak_bytes
     << " quiescent=" << r.quiescent_assignments.size()
     << " witness_scc=" << r.witness_scc_size << "\nprefix:";
  for (const auto& step : r.witness_prefix) {
    os << "\n  " << step.to_string(inst);
  }
  os << "\ncycle:";
  for (const auto& step : r.witness_cycle) {
    os << "\n  " << step.to_string(inst);
  }
  return os.str();
}

/// checker_summary with the quarantined wall-clock field removed.
std::string strip_wall_us(const std::string& line) {
  static const std::regex wall(R"re(,"wall_us":[0-9]+)re");
  return std::regex_replace(line, wall, "");
}

struct ObservedRun {
  ExploreResult result;
  std::string summary_line;  ///< checker_summary bytes, wall_us stripped
};

ObservedRun run_explore(const spp::Instance& inst, const Model& m,
                        ExploreOptions options) {
  obs::MemorySink sink;
  options.obs.sink = &sink;
  ObservedRun run;
  run.result = explore(inst, m, options);
  EXPECT_FALSE(sink.lines().empty());
  const std::string& last = sink.lines().back();
  EXPECT_NE(last.find("checker_summary"), std::string::npos) << last;
  run.summary_line = strip_wall_us(last);
  return run;
}

// --- Tentpole: byte-identical results at any thread width (BFS) -------

TEST(ParallelChecker, AllModelsByteIdenticalAcrossThreadWidths) {
  for (const spp::Instance& inst :
       {spp::bad_gadget(), spp::good_gadget()}) {
    for (const Model& m : Model::all()) {
      ExploreOptions base;
      base.max_channel_length = 2;
      // Both bounds together keep every cell fast: the cap bounds the
      // graph, the memory limit bounds the high-branching cells whose
      // transition count explodes before the cap bites. Truncated runs
      // are deliberately in scope — truncation points are enumeration-
      // ordered, so they must be width-deterministic too.
      base.max_states = 4000;
      base.memory_limit_bytes = 16u << 20;
      base.extract_witness = true;
      const ObservedRun serial = run_explore(inst, m, base);
      for (const std::size_t threads : {2u, 8u}) {
        ExploreOptions options = base;
        options.threads = threads;
        const ObservedRun parallel = run_explore(inst, m, options);
        EXPECT_EQ(result_fingerprint(inst, serial.result),
                  result_fingerprint(inst, parallel.result))
            << m.name() << " threads=" << threads;
        EXPECT_EQ(serial.summary_line, parallel.summary_line)
            << m.name() << " threads=" << threads;
      }
    }
  }
}

TEST(ParallelChecker, WitnessFromEightThreadsReplays) {
  const spp::Instance inst = spp::bad_gadget();
  // REO finds the oscillation within a small graph at this bound (the
  // weak models need far more states before their witness SCC closes,
  // and witness-tour construction is quadratic in SCC edges).
  const Model m = Model::parse("REO");
  ExploreOptions options;
  options.max_channel_length = 2;
  options.max_states = 4000;
  options.extract_witness = true;
  options.threads = 8;
  const ExploreResult r = explore(inst, m, options);
  ASSERT_TRUE(r.oscillation_found);
  ASSERT_FALSE(r.witness_cycle.empty());

  model::ActivationScript script = r.witness_prefix;
  const std::size_t loop_from = script.size();
  script.insert(script.end(), r.witness_cycle.begin(),
                r.witness_cycle.end());
  for (const auto& step : script) {
    model::require_step_allowed(m, inst, step);
  }
  engine::ScriptedScheduler sched(script, loop_from);
  const auto run = engine::run(
      inst, sched,
      {.max_steps = 10 * script.size() + 100, .enforce_model = m});
  EXPECT_EQ(run.outcome, engine::Outcome::kOscillating);
}

TEST(ParallelChecker, ZeroThreadsMeansHardwareConcurrency) {
  // threads = 0 must resolve, run, and agree with the serial result.
  const spp::Instance inst = spp::disagree();
  const Model m = Model::parse("RMS");
  const ExploreResult serial =
      explore(inst, m, {.max_channel_length = 3});
  const ExploreResult wide =
      explore(inst, m, {.max_channel_length = 3, .threads = 0});
  EXPECT_EQ(serial.states, wide.states);
  EXPECT_EQ(serial.transitions, wide.transitions);
  EXPECT_EQ(serial.oscillation_found, wide.oscillation_found);
}

TEST(ParallelChecker, MetricsShardsMergeToSerialTotals) {
  const spp::Instance inst = spp::disagree();
  const Model m = Model::parse("RMS");
  for (const std::size_t threads : {1u, 8u}) {
    obs::Registry registry;
    ExploreOptions options;
    options.max_channel_length = 3;
    options.threads = threads;
    options.obs.metrics = &registry;
    const ExploreResult r = explore(inst, m, options);
    const auto samples = registry.snapshot();
    const auto counter = [&](const std::string& name) -> double {
      const auto it = std::find_if(
          samples.begin(), samples.end(),
          [&](const obs::MetricSample& s) { return s.name == name; });
      return it == samples.end() ? -1.0 : it->value;
    };
    EXPECT_EQ(counter("checker.states"), static_cast<double>(r.states))
        << threads;
    EXPECT_EQ(counter("checker.transitions"),
              static_cast<double>(r.transitions))
        << threads;
  }
}

// --- Searcher strategies ----------------------------------------------

TEST(ParallelChecker, AllSearchersAgreeOnExhaustiveVerdicts) {
  const spp::Instance inst = spp::disagree();
  for (const char* name : {"R1O", "REA", "RMS"}) {
    const Model m = Model::parse(name);
    const ExploreResult bfs =
        explore(inst, m, {.max_channel_length = 3});
    // No cap/memory truncation: the explored set is then exactly "all
    // states reachable through in-bound configurations", which is
    // order-independent even when the channel bound trims the space.
    ASSERT_FALSE(bfs.state_cap_hit) << name;
    ASSERT_FALSE(bfs.memory_limit_hit) << name;
    for (const SearcherKind kind :
         {SearcherKind::kDFS, SearcherKind::kRandomPath,
          SearcherKind::kPriorityFlap}) {
      for (const std::size_t threads : {1u, 4u}) {
        ExploreOptions options;
        options.max_channel_length = 3;
        options.threads = threads;
        options.searcher = kind;
        options.searcher_seed = 42;
        const ExploreResult r = explore(inst, m, options);
        // The explored *set* is order-independent when exhaustive, so
        // every strategy proves the same theorem with the same counts —
        // only the state numbering differs.
        EXPECT_EQ(r.oscillation_found, bfs.oscillation_found)
            << name << " " << to_string(kind) << " t=" << threads;
        EXPECT_EQ(r.exhaustive, bfs.exhaustive)
            << name << " " << to_string(kind) << " t=" << threads;
        EXPECT_EQ(r.states, bfs.states)
            << name << " " << to_string(kind) << " t=" << threads;
        EXPECT_EQ(r.transitions, bfs.transitions)
            << name << " " << to_string(kind) << " t=" << threads;
      }
    }
  }
}

TEST(ParallelChecker, RandomSearcherIsDeterministicPerSeed) {
  const spp::Instance inst = spp::disagree();
  const Model m = Model::parse("RMS");
  ExploreOptions options;
  options.max_channel_length = 3;
  options.searcher = SearcherKind::kRandomPath;
  options.searcher_seed = 7;
  const ExploreResult a = explore(inst, m, options);
  const ExploreResult b = explore(inst, m, options);
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.frontier_peak, b.frontier_peak);
}

TEST(ParallelChecker, SearcherKindParsesAndRoundTrips) {
  for (const SearcherKind kind :
       {SearcherKind::kBFS, SearcherKind::kDFS, SearcherKind::kRandomPath,
        SearcherKind::kPriorityFlap}) {
    EXPECT_EQ(parse_searcher_kind(to_string(kind)), kind);
  }
  EXPECT_THROW(parse_searcher_kind("best-first"), PreconditionError);
}

// --- Satellite 1: exact state cap -------------------------------------

TEST(ParallelChecker, StateCapAdmitsExactlyTheConfiguredMaximum) {
  const spp::Instance inst = spp::bad_gadget();
  for (const std::size_t threads : {1u, 8u}) {
    ExploreOptions options;
    options.max_channel_length = 2;
    options.max_states = 5;
    options.threads = threads;
    const ExploreResult r =
        explore(inst, Model::parse("R1O"), options);
    EXPECT_TRUE(r.state_cap_hit) << threads;
    EXPECT_EQ(r.state_cap_limit, 5u) << threads;
    // The historical per-pop check admitted up to N+branching states;
    // the intern-time cap admits exactly N.
    EXPECT_LE(r.states, 5u) << threads;
    EXPECT_EQ(r.states, 5u) << threads;  // BAD-GADGET has >> 5 states
    EXPECT_FALSE(r.exhaustive) << threads;
  }
}

// --- Satellite 2: independent heartbeat cadences ----------------------

TEST(ParallelChecker, CountHeartbeatsDoNotResetTheTimeCadence) {
  // Fake clock: steady expansion emits a count beat every 10 expansions
  // (well inside the 100 ms interval). The historical code re-armed the
  // time clock on every count beat, so the time cadence never fired;
  // the fix keeps the cadences independent.
  HeartbeatCadence cadence(/*every=*/10, /*interval_ms=*/100);
  std::size_t time_beats = 0;
  std::uint64_t now_ms = 0;
  for (std::uint64_t expanded = 1; expanded <= 1000; ++expanded) {
    now_ms += 1;  // 1 ms per expansion -> count beat every 10 ms
    ASSERT_EQ(cadence.count_due(expanded), expanded % 10 == 0);
    if (cadence.time_due(now_ms)) {
      ++time_beats;
    }
  }
  // 1000 ms of fake time at a 100 ms interval: 10 time beats (t = 100,
  // 200, ..., 1000) even though 100 count beats fired in between.
  EXPECT_EQ(time_beats, 10u);
}

TEST(ParallelChecker, TimeCadenceAdvancesOnlyWhenItFires) {
  HeartbeatCadence cadence(/*every=*/0, /*interval_ms=*/50);
  EXPECT_FALSE(cadence.count_due(50));  // count cadence disabled
  EXPECT_FALSE(cadence.time_due(49));
  EXPECT_TRUE(cadence.time_due(50));
  EXPECT_FALSE(cadence.time_due(99));  // re-armed at 50, due again at 100
  EXPECT_TRUE(cadence.time_due(100));
}

TEST(ParallelChecker, HeartbeatEventsMatchAcrossThreadWidths) {
  const spp::Instance inst = spp::bad_gadget();
  std::vector<std::string> per_width;
  for (const std::size_t threads : {1u, 8u}) {
    obs::MemorySink sink;
    ExploreOptions options;
    options.max_channel_length = 2;
    options.max_states = 4000;
    options.heartbeat_every = 500;
    options.threads = threads;
    options.obs.sink = &sink;
    explore(inst, Model::parse("R1O"), options);
    std::ostringstream all;
    for (const std::string& line : sink.lines()) {
      if (line.find("checker_heartbeat") == std::string::npos) {
        continue;
      }
      // elapsed_ms is wall-clock (quarantined, like wall_us).
      static const std::regex elapsed(R"re(,"elapsed_ms":[0-9]+)re");
      all << std::regex_replace(line, elapsed, "") << "\n";
    }
    per_width.push_back(all.str());
  }
  EXPECT_FALSE(per_width[0].empty());
  EXPECT_EQ(per_width[0], per_width[1]);
}

// --- Satellite 3: truncated progress lands on done == total -----------

TEST(ParallelChecker, StateCapTruncationCompletesProgress) {
  const spp::Instance inst = spp::bad_gadget();
  obs::ProgressEstimator progress("checker", "frontier");
  ExploreOptions options;
  options.max_channel_length = 2;
  options.max_states = 1000;
  options.progress = &progress;
  const ExploreResult r = explore(inst, Model::parse("R1O"), options);
  ASSERT_TRUE(r.state_cap_hit);
  const obs::ProgressSnapshot snap = progress.snapshot();
  EXPECT_EQ(snap.done, snap.total);
  EXPECT_GT(snap.total, 0u);
  EXPECT_DOUBLE_EQ(snap.fraction, 1.0);
  EXPECT_EQ(snap.eta_ms, 0u);  // nothing left: no dangling ETA
  EXPECT_EQ(snap.detail_label, "truncated:state_cap");
}

TEST(ParallelChecker, MemoryTruncationCompletesProgress) {
  const spp::Instance inst = spp::bad_gadget();
  obs::ProgressEstimator progress("checker", "frontier");
  ExploreOptions options;
  options.max_channel_length = 2;
  options.memory_limit_bytes = 64 * 1024;
  options.progress = &progress;
  const ExploreResult r = explore(inst, Model::parse("R1O"), options);
  ASSERT_TRUE(r.memory_limit_hit);
  const obs::ProgressSnapshot snap = progress.snapshot();
  EXPECT_EQ(snap.done, snap.total);
  EXPECT_DOUBLE_EQ(snap.fraction, 1.0);
  EXPECT_EQ(snap.detail_label, "truncated:memory_limit");
}

TEST(ParallelChecker, ExhaustiveRunsKeepTheFrontierLabel) {
  const spp::Instance inst = spp::disagree();
  obs::ProgressEstimator progress("checker", "frontier");
  ExploreOptions options;
  options.progress = &progress;
  // REA (polling) drains channels, so DISAGREE exhausts under it.
  const ExploreResult r = explore(inst, Model::parse("REA"), options);
  ASSERT_TRUE(r.exhaustive);
  const obs::ProgressSnapshot snap = progress.snapshot();
  EXPECT_EQ(snap.done, snap.total);
  EXPECT_EQ(snap.detail_label, "frontier");  // untouched when not truncated
}

// Truncation points are enumeration-ordered, so a capped exploration is
// also byte-identical across widths.
TEST(ParallelChecker, TruncatedRunsStayDeterministicAcrossWidths) {
  const spp::Instance inst = spp::bad_gadget();
  const Model m = Model::parse("R1O");
  ExploreOptions base;
  base.max_channel_length = 2;
  base.memory_limit_bytes = 256 * 1024;
  const ObservedRun serial = run_explore(inst, m, base);
  ASSERT_TRUE(serial.result.memory_limit_hit);
  for (const std::size_t threads : {2u, 8u}) {
    ExploreOptions options = base;
    options.threads = threads;
    const ObservedRun parallel = run_explore(inst, m, options);
    EXPECT_EQ(result_fingerprint(inst, serial.result),
              result_fingerprint(inst, parallel.result))
        << threads;
    EXPECT_EQ(serial.summary_line, parallel.summary_line) << threads;
  }
}

}  // namespace
}  // namespace commroute::checker
